//! The failure-log analyses of El-Sayed & Schroeder (DSN 2013).
//!
//! Each module answers one of the paper's questions against any trace in
//! the `hpcfail-store` data model:
//!
//! | module | paper section | question |
//! |---|---|---|
//! | [`correlation`] | III | how are failures correlated in time, within a node, rack and system? |
//! | [`pairwise`] | III-A.3 | does the type of a failure predict the type of a follow-up? |
//! | [`nodes`] | IV | do some nodes fail differently from others? |
//! | [`usage`] | V | what is the effect of usage on a node's reliability? |
//! | [`users`] | VI | are some users more prone to node failures than others? |
//! | [`power`] | VII | what is the impact of power problems? |
//! | [`temperature`] | VIII | how does temperature affect failures? |
//! | [`cosmic`] | IX | do cosmic rays correlate with DRAM/CPU failures? |
//! | [`regression_study`] | X | joint regression of outages on usage, layout, temperature |
//! | [`predict`] | (extension) | how useful are the correlations for failure prediction? |
//! | [`interarrival`] | (extension) | the statistical-model view: inter-arrival fits, ACF |
//! | [`availability`] | (extension) | MTBF / MTTR / availability reporting from downtimes |
//! | [`checkpoint`] | (extension) | replaying checkpoint policies over the failure timeline |
//!
//! All conditional probabilities share one estimator ([`estimate`]):
//! the probability of a target event in the window following a trigger,
//! against the empirical probability in a random window of the same
//! length, with Wilson confidence intervals and the two-sample
//! proportion z-test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod channels;
pub mod checkpoint;
pub mod correlation;
pub mod cosmic;
pub mod engine;
pub mod estimate;
pub mod interarrival;
pub mod nodes;
pub mod pairwise;
pub mod parallel;
pub mod power;
pub mod predict;
pub mod regression_study;
pub mod temperature;
pub mod usage;
pub mod users;

/// The most frequently used items.
pub mod prelude {
    pub use crate::availability::AvailabilityAnalysis;
    pub use crate::channels::{missing_channels, Channel};
    pub use crate::checkpoint::{CheckpointPolicy, CheckpointSimulator};
    pub use crate::correlation::{CorrelationAnalysis, Scope};
    pub use crate::cosmic::CosmicAnalysis;
    pub use crate::engine::{AnalysisRequest, AnalysisResult, Engine};
    pub use crate::estimate::ConditionalEstimate;
    pub use crate::interarrival::ArrivalAnalysis;
    pub use crate::nodes::NodeAnalysis;
    pub use crate::pairwise::PairwiseAnalysis;
    pub use crate::power::PowerAnalysis;
    pub use crate::predict::AlarmRule;
    pub use crate::regression_study::RegressionStudy;
    pub use crate::temperature::TemperatureAnalysis;
    pub use crate::usage::UsageAnalysis;
    pub use crate::users::UserAnalysis;
}
