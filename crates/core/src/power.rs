//! Section VII: what is the impact of power problems?
//!
//! Covers Figure 9 (breakdown of environmental failures), Figure 10
//! (power problems vs hardware failures, overall and per component),
//! Figure 11 (power problems vs software failures, overall and per
//! sub-cause), the Section VII-A.2 unscheduled-maintenance effect, and
//! the Figure 12 time-space scatter of power-related failures.

use crate::correlation::{CorrelationAnalysis, Scope};
use crate::estimate::ConditionalEstimate;
use hpcfail_store::query::WindowCounts;
use hpcfail_store::trace::Trace;
use hpcfail_types::prelude::*;
use std::collections::BTreeMap;

/// One point of the Figure 12 scatter: a power-related failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerScatterPoint {
    /// Which of the four power problems.
    pub kind: PowerProblem,
    /// The node that logged it.
    pub node: NodeId,
    /// When.
    pub time: Timestamp,
}

/// The four power-problem trigger kinds of Figures 10-12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerProblem {
    /// Facility power outage (environment failure).
    Outage,
    /// Power spike (environment failure).
    Spike,
    /// Node power-supply-unit failure (hardware failure).
    PowerSupply,
    /// UPS failure (environment failure).
    Ups,
}

impl PowerProblem {
    /// All four, in the paper's order.
    pub const ALL: [PowerProblem; 4] = [
        PowerProblem::Outage,
        PowerProblem::Spike,
        PowerProblem::PowerSupply,
        PowerProblem::Ups,
    ];

    /// The failure class that identifies this problem in the log.
    pub fn class(self) -> FailureClass {
        match self {
            PowerProblem::Outage => FailureClass::Env(EnvironmentCause::PowerOutage),
            PowerProblem::Spike => FailureClass::Env(EnvironmentCause::PowerSpike),
            PowerProblem::PowerSupply => FailureClass::Hw(HardwareComponent::PowerSupply),
            PowerProblem::Ups => FailureClass::Env(EnvironmentCause::Ups),
        }
    }

    /// The label used in the paper's figures.
    pub const fn label(self) -> &'static str {
        match self {
            PowerProblem::Outage => "PowerOutage",
            PowerProblem::Spike => "PowerSpike",
            PowerProblem::PowerSupply => "PowerSupplyFail",
            PowerProblem::Ups => "UPSFail",
        }
    }
}

impl std::fmt::Display for PowerProblem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing a [`PowerProblem`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePowerProblemError(String);

impl std::fmt::Display for ParsePowerProblemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown power problem {:?}, expected PowerOutage, PowerSpike, \
             PowerSupplyFail or UPSFail",
            self.0
        )
    }
}

impl std::error::Error for ParsePowerProblemError {}

impl std::str::FromStr for PowerProblem {
    type Err = ParsePowerProblemError;

    /// Accepts the figure labels case-insensitively, with or without
    /// the `Fail` suffix, plus the bare short forms `outage`/`spike`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut key = s.to_ascii_lowercase();
        key.retain(|c| !matches!(c, '-' | '_' | ' '));
        match key.strip_suffix("fail").unwrap_or(&key) {
            "poweroutage" | "outage" => Ok(PowerProblem::Outage),
            "powerspike" | "spike" => Ok(PowerProblem::Spike),
            "powersupply" | "psu" => Ok(PowerProblem::PowerSupply),
            "ups" => Ok(PowerProblem::Ups),
            _ => Err(ParsePowerProblemError(s.to_owned())),
        }
    }
}

/// The hardware components Figure 10 (right) reports.
pub const FIG10_COMPONENTS: [HardwareComponent; 5] = [
    HardwareComponent::PowerSupply,
    HardwareComponent::MemoryDimm,
    HardwareComponent::NodeBoard,
    HardwareComponent::Fan,
    HardwareComponent::Cpu,
];

/// The Section VII power analysis.
#[derive(Debug, Clone, Copy)]
pub struct PowerAnalysis<'a> {
    trace: &'a Trace,
    correlation: CorrelationAnalysis<'a>,
}

impl<'a> PowerAnalysis<'a> {
    /// Creates the analysis over `trace`.
    #[deprecated(note = "construct through `hpcfail_core::engine::Engine::power` instead")]
    pub fn new(trace: &'a Trace) -> Self {
        PowerAnalysis::over(trace)
    }

    /// Engine-internal constructor: the public entry point is
    /// [`crate::engine::Engine::power`].
    pub(crate) fn over(trace: &'a Trace) -> Self {
        PowerAnalysis {
            trace,
            correlation: CorrelationAnalysis::over(trace),
        }
    }

    /// Figure 9: counts of environmental failures by sub-cause,
    /// fleet-wide.
    pub fn env_breakdown(&self) -> BTreeMap<EnvironmentCause, u64> {
        let mut counts = BTreeMap::new();
        for cause in EnvironmentCause::ALL {
            counts.insert(cause, 0u64);
        }
        for system in self.trace.systems() {
            for f in system.failures() {
                if let SubCause::Environment(c) = f.sub_cause {
                    *counts.entry(c).or_insert(0) += 1;
                }
            }
        }
        counts
    }

    /// Figure 9 as shares summing to 1 (0s when there are no
    /// environmental failures).
    pub fn env_shares(&self) -> BTreeMap<EnvironmentCause, f64> {
        let counts = self.env_breakdown();
        let total: u64 = counts.values().sum();
        counts
            .into_iter()
            .map(|(c, n)| {
                (
                    c,
                    if total == 0 {
                        0.0
                    } else {
                        n as f64 / total as f64
                    },
                )
            })
            .collect()
    }

    /// P(`target` failure on the same node within `window` after a
    /// `problem`), fleet-pooled, against the random-window baseline —
    /// one bar of Figure 10/11 (left).
    pub fn conditional_after(
        &self,
        problem: PowerProblem,
        target: FailureClass,
        window: Window,
    ) -> ConditionalEstimate {
        self.correlation
            .fleet_conditional(problem.class(), target, window, Scope::SameNode)
    }

    /// Figure 10 (left): hardware-failure probability after each power
    /// problem, for each window.
    pub fn figure10_left(&self) -> Vec<(PowerProblem, Window, ConditionalEstimate)> {
        let mut out = Vec::new();
        for window in Window::ALL {
            for problem in PowerProblem::ALL {
                out.push((
                    problem,
                    window,
                    self.conditional_after(
                        problem,
                        FailureClass::Root(RootCause::Hardware),
                        window,
                    ),
                ));
            }
        }
        out
    }

    /// Figure 10 (right): per-component hardware-failure probability in
    /// the month after each power problem.
    pub fn figure10_right(&self) -> Vec<(PowerProblem, HardwareComponent, ConditionalEstimate)> {
        let mut out = Vec::new();
        for component in FIG10_COMPONENTS {
            for problem in PowerProblem::ALL {
                out.push((
                    problem,
                    component,
                    self.conditional_after(problem, FailureClass::Hw(component), Window::Month),
                ));
            }
        }
        out
    }

    /// Figure 11 (left): software-failure probability after each power
    /// problem, for each window.
    pub fn figure11_left(&self) -> Vec<(PowerProblem, Window, ConditionalEstimate)> {
        let mut out = Vec::new();
        for window in Window::ALL {
            for problem in PowerProblem::ALL {
                out.push((
                    problem,
                    window,
                    self.conditional_after(
                        problem,
                        FailureClass::Root(RootCause::Software),
                        window,
                    ),
                ));
            }
        }
        out
    }

    /// Figure 11 (right): per-sub-cause software-failure probability in
    /// the month after each power problem.
    pub fn figure11_right(&self) -> Vec<(PowerProblem, SoftwareCause, ConditionalEstimate)> {
        let mut out = Vec::new();
        for cause in SoftwareCause::ALL {
            for problem in PowerProblem::ALL {
                out.push((
                    problem,
                    cause,
                    self.conditional_after(problem, FailureClass::Sw(cause), Window::Month),
                ));
            }
        }
        out
    }

    /// Section VII-A.2: probability of *unscheduled hardware
    /// maintenance* within a month of a power problem, against the
    /// random-month baseline.
    pub fn maintenance_after(&self, problem: PowerProblem) -> ConditionalEstimate {
        let class = problem.class();
        let parts: Vec<ConditionalEstimate> = self
            .trace
            .systems()
            .map(|system| {
                let base = system.indexed_maintenance_baseline(Window::Month);
                let mut cond = WindowCounts::default();
                for f in system.failures() {
                    if !class.matches(f) || !system.window_observed(f.time, Window::Month) {
                        continue;
                    }
                    cond.total += 1;
                    if system.node_has_unscheduled_hw_maintenance_in(
                        f.node,
                        f.time,
                        f.time + Window::Month.duration(),
                    ) {
                        cond.hits += 1;
                    }
                }
                ConditionalEstimate::from_counts(cond, base)
            })
            .collect();
        crate::correlation::merge_stratified(&parts)
    }

    /// Figure 12: the time-space scatter of power-related failures for
    /// one system.
    pub fn scatter(&self, system: SystemId) -> Vec<PowerScatterPoint> {
        let Some(s) = self.trace.system(system) else {
            return Vec::new();
        };
        s.failures()
            .iter()
            .filter_map(|f| {
                let kind = PowerProblem::ALL
                    .into_iter()
                    .find(|p| p.class().matches(f))?;
                Some(PowerScatterPoint {
                    kind,
                    node: f.node,
                    time: f.time,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcfail_store::trace::SystemTraceBuilder;

    fn build() -> Trace {
        let config = SystemConfig {
            id: SystemId::new(2),
            name: "t".into(),
            nodes: 4,
            procs_per_node: 4,
            hardware: HardwareClass::Smp4Way,
            start: Timestamp::EPOCH,
            end: Timestamp::from_days(200.0),
            has_layout: false,
            has_job_log: false,
            has_temperature: false,
        };
        let mut b = SystemTraceBuilder::new(config);
        let sys = SystemId::new(2);
        // A power outage on node 1 at day 10, followed by a memory
        // failure on day 20 (inside the month) on the same node.
        b.push_failure(FailureRecord::new(
            sys,
            NodeId::new(1),
            Timestamp::from_days(10.0),
            RootCause::Environment,
            SubCause::Environment(EnvironmentCause::PowerOutage),
        ));
        b.push_failure(FailureRecord::new(
            sys,
            NodeId::new(1),
            Timestamp::from_days(20.0),
            RootCause::Hardware,
            SubCause::Hardware(HardwareComponent::MemoryDimm),
        ));
        // A PSU failure on node 2 at day 50, fan failure on day 60.
        b.push_failure(FailureRecord::new(
            sys,
            NodeId::new(2),
            Timestamp::from_days(50.0),
            RootCause::Hardware,
            SubCause::Hardware(HardwareComponent::PowerSupply),
        ));
        b.push_failure(FailureRecord::new(
            sys,
            NodeId::new(2),
            Timestamp::from_days(60.0),
            RootCause::Hardware,
            SubCause::Hardware(HardwareComponent::Fan),
        ));
        // A UPS env failure on node 3, with unscheduled maintenance after.
        b.push_failure(FailureRecord::new(
            sys,
            NodeId::new(3),
            Timestamp::from_days(100.0),
            RootCause::Environment,
            SubCause::Environment(EnvironmentCause::Ups),
        ));
        b.push_maintenance(MaintenanceRecord {
            system: sys,
            node: NodeId::new(3),
            time: Timestamp::from_days(110.0),
            hardware_related: true,
            scheduled: false,
        });
        let mut trace = Trace::new();
        trace.insert_system(b.build());
        trace
    }

    #[test]
    fn env_breakdown_counts_subcauses() {
        let trace = build();
        let a = PowerAnalysis::over(&trace);
        let counts = a.env_breakdown();
        assert_eq!(counts[&EnvironmentCause::PowerOutage], 1);
        assert_eq!(counts[&EnvironmentCause::Ups], 1);
        assert_eq!(counts[&EnvironmentCause::PowerSpike], 0);
        let shares = a.env_shares();
        let total: f64 = shares.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hardware_after_outage_detected() {
        let trace = build();
        let a = PowerAnalysis::over(&trace);
        let e = a.conditional_after(
            PowerProblem::Outage,
            FailureClass::Root(RootCause::Hardware),
            Window::Month,
        );
        assert_eq!(e.conditional.trials(), 1);
        assert_eq!(e.conditional.successes(), 1);
        // No hardware failure in the week after, though.
        let week = a.conditional_after(
            PowerProblem::Outage,
            FailureClass::Root(RootCause::Hardware),
            Window::Week,
        );
        assert_eq!(week.conditional.successes(), 0);
    }

    #[test]
    fn psu_failure_cascades_to_fan() {
        let trace = build();
        let a = PowerAnalysis::over(&trace);
        let e = a.conditional_after(
            PowerProblem::PowerSupply,
            FailureClass::Hw(HardwareComponent::Fan),
            Window::Month,
        );
        assert_eq!(e.conditional.successes(), 1);
    }

    #[test]
    fn figure_tables_have_expected_shape() {
        let trace = build();
        let a = PowerAnalysis::over(&trace);
        assert_eq!(a.figure10_left().len(), 12); // 4 problems x 3 windows
        assert_eq!(a.figure10_right().len(), 20); // 5 components x 4
        assert_eq!(a.figure11_left().len(), 12);
        assert_eq!(a.figure11_right().len(), 24); // 6 sub-causes x 4
    }

    #[test]
    fn maintenance_after_ups() {
        let trace = build();
        let a = PowerAnalysis::over(&trace);
        let e = a.maintenance_after(PowerProblem::Ups);
        assert_eq!(e.conditional.trials(), 1);
        assert_eq!(e.conditional.successes(), 1);
        // Outage at day 10 on node 1: no maintenance followed.
        let outage = a.maintenance_after(PowerProblem::Outage);
        assert_eq!(outage.conditional.successes(), 0);
    }

    #[test]
    fn scatter_extracts_power_failures_only() {
        let trace = build();
        let a = PowerAnalysis::over(&trace);
        let points = a.scatter(SystemId::new(2));
        // Outage, PSU, UPS — the fan and memory failures are not power
        // problems.
        assert_eq!(points.len(), 3);
        assert!(points.iter().any(|p| p.kind == PowerProblem::Outage));
        assert!(points.iter().any(|p| p.kind == PowerProblem::PowerSupply));
        assert!(points.iter().any(|p| p.kind == PowerProblem::Ups));
        assert!(a.scatter(SystemId::new(77)).is_empty());
    }
}
