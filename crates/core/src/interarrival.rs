//! Companion analysis: the statistical-model view of the failure
//! process.
//!
//! The paper deliberately avoids formal models ("rather than building
//! formal statistical models of correlations..."), but positions itself
//! against a literature that characterizes failure inter-arrival times
//! and autocorrelation. A toolkit should offer both views: this module
//! fits the classic inter-arrival distributions (exponential, Weibull,
//! lognormal, gamma) with AIC ranking — a Weibull shape below 1 is the
//! model-world counterpart of the paper's "failures cluster" finding —
//! and tests the daily failure-count series for autocorrelation.

use hpcfail_stats::htest::TestResult;
use hpcfail_stats::mle::{rank_fits, FitError, RankedFit};
use hpcfail_stats::timeseries::{acf, ljung_box};
use hpcfail_store::trace::{SystemTrace, Trace};
use hpcfail_types::prelude::*;
use std::fmt;

/// Inter-arrival and time-series characterization of one system.
#[derive(Debug, Clone)]
pub struct ArrivalProfile {
    /// The system.
    pub system: SystemId,
    /// Number of inter-arrival gaps analyzed.
    pub gaps: usize,
    /// Mean time between failures (hours), system-wide.
    pub mtbf_hours: f64,
    /// Candidate fits ranked by AIC (best first).
    pub fits: Vec<RankedFit>,
    /// Sample autocorrelation of daily failure counts at lags 1..=7.
    pub daily_acf: Vec<f64>,
    /// Ljung-Box test of "no autocorrelation up to lag 7".
    pub ljung_box: TestResult,
}

impl ArrivalProfile {
    /// The AIC-best fit.
    pub fn best_fit(&self) -> &RankedFit {
        &self.fits[0]
    }

    /// `true` when the best Weibull/gamma-style fit has a decreasing
    /// hazard — the model-world signature of failure clustering.
    pub fn clustering_detected(&self) -> bool {
        self.fits
            .iter()
            .filter_map(|f| f.dist.decreasing_hazard())
            .next()
            .unwrap_or(false)
            || self.ljung_box.significant_at(0.01)
    }
}

/// The inter-arrival analysis over a trace.
#[derive(Debug, Clone, Copy)]
pub struct ArrivalAnalysis<'a> {
    trace: &'a Trace,
}

impl<'a> ArrivalAnalysis<'a> {
    /// Creates the analysis over `trace`.
    #[deprecated(note = "construct through `hpcfail_core::engine::Engine::arrivals` instead")]
    pub fn new(trace: &'a Trace) -> Self {
        ArrivalAnalysis::over(trace)
    }

    /// Engine-internal constructor: the public entry point is
    /// [`crate::engine::Engine::arrivals`].
    pub(crate) fn over(trace: &'a Trace) -> Self {
        ArrivalAnalysis { trace }
    }

    /// Characterizes one system's failure process.
    ///
    /// # Errors
    ///
    /// [`ArrivalError`] when the system is unknown, has too few
    /// failures of the class, or no candidate family fits.
    pub fn profile(
        &self,
        system: SystemId,
        class: FailureClass,
    ) -> Result<ArrivalProfile, ArrivalError> {
        let s = self
            .trace
            .system(system)
            .ok_or_else(|| ArrivalError::NotEnoughData(format!("unknown system {system}")))?;
        let gaps = interarrival_hours(s, class);
        if gaps.len() < 30 {
            return Err(ArrivalError::NotEnoughData(format!(
                "system {system} has only {} inter-arrival gaps",
                gaps.len()
            )));
        }
        let fits = rank_fits(&gaps)?;
        let counts = daily_counts(s, class);
        let max_lag = 7.min(counts.len().saturating_sub(2));
        if max_lag == 0 {
            return Err(ArrivalError::NotEnoughData(
                "observation span too short".into(),
            ));
        }
        let r = acf(&counts, max_lag);
        let lb = ljung_box(&counts, max_lag);
        let mtbf_hours = gaps.iter().sum::<f64>() / gaps.len() as f64;
        Ok(ArrivalProfile {
            system,
            gaps: gaps.len(),
            mtbf_hours,
            fits,
            daily_acf: r[1..].to_vec(),
            ljung_box: lb,
        })
    }
}

/// Errors from the inter-arrival analysis.
#[derive(Debug)]
pub enum ArrivalError {
    /// Too few failures (or an unknown system) to characterize.
    NotEnoughData(String),
    /// No candidate distribution family could be fitted.
    Fit(FitError),
}

impl fmt::Display for ArrivalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrivalError::NotEnoughData(what) => write!(f, "not enough data: {what}"),
            ArrivalError::Fit(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ArrivalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArrivalError::NotEnoughData(_) => None,
            ArrivalError::Fit(e) => Some(e),
        }
    }
}

impl From<FitError> for ArrivalError {
    fn from(e: FitError) -> Self {
        ArrivalError::Fit(e)
    }
}

/// System-wide inter-arrival gaps (hours) between consecutive failures
/// of `class`.
fn interarrival_hours(system: &SystemTrace, class: FailureClass) -> Vec<f64> {
    let times: Vec<i64> = system
        .failures()
        .iter()
        .filter(|f| class.matches(f))
        .map(|f| f.time.as_seconds())
        .collect();
    times
        .windows(2)
        .map(|w| (w[1] - w[0]) as f64 / 3600.0)
        .filter(|&gap| gap > 0.0)
        .collect()
}

/// Daily failure counts of `class` over the observation span.
fn daily_counts(system: &SystemTrace, class: FailureClass) -> Vec<f64> {
    let days = system.config().observation_days().max(0) as usize;
    let start = system.config().start;
    let mut counts = vec![0.0; days];
    for f in system.failures() {
        if class.matches(f) {
            let d = (f.time - start).as_seconds() / 86_400;
            if (0..days as i64).contains(&d) {
                counts[d as usize] += 1.0;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcfail_stats::dist::Distribution;
    use hpcfail_store::trace::SystemTraceBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(days: f64) -> SystemConfig {
        SystemConfig {
            id: SystemId::new(1),
            name: "t".into(),
            nodes: 8,
            procs_per_node: 4,
            hardware: HardwareClass::Smp4Way,
            start: Timestamp::EPOCH,
            end: Timestamp::from_days(days),
            has_layout: false,
            has_job_log: false,
            has_temperature: false,
        }
    }

    fn trace_with_gaps(gaps_hours: &[f64]) -> Trace {
        let mut b = SystemTraceBuilder::new(config(3000.0));
        let mut t = 0.0;
        for &g in gaps_hours {
            t += g;
            b.push_failure(FailureRecord::new(
                SystemId::new(1),
                NodeId::new(0),
                Timestamp::from_seconds((t * 3600.0) as i64),
                RootCause::Hardware,
                SubCause::None,
            ));
        }
        let mut trace = Trace::new();
        trace.insert_system(b.build());
        trace
    }

    #[test]
    fn exponential_gaps_keep_exponential_competitive() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = hpcfail_stats::dist::Exponential::new(1.0 / 24.0);
        let gaps: Vec<f64> = (0..1500).map(|_| d.sample(&mut rng)).collect();
        let trace = trace_with_gaps(&gaps);
        let profile = ArrivalAnalysis::over(&trace)
            .profile(SystemId::new(1), FailureClass::Any)
            .unwrap();
        assert!(profile.gaps > 1000);
        assert!((profile.mtbf_hours - 24.0).abs() < 2.0);
        let exp_rank = profile
            .fits
            .iter()
            .position(|f| f.dist.family() == "exponential")
            .unwrap();
        assert!(exp_rank <= 1, "exponential ranked {exp_rank}");
    }

    #[test]
    fn clustered_gaps_detected_as_decreasing_hazard() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = hpcfail_stats::dist::Weibull::new(0.55, 24.0);
        let gaps: Vec<f64> = (0..1500).map(|_| d.sample(&mut rng).max(0.01)).collect();
        let trace = trace_with_gaps(&gaps);
        let profile = ArrivalAnalysis::over(&trace)
            .profile(SystemId::new(1), FailureClass::Any)
            .unwrap();
        assert!(profile.clustering_detected());
        assert_ne!(profile.best_fit().dist.family(), "exponential");
    }

    #[test]
    fn too_few_failures_is_an_error() {
        let trace = trace_with_gaps(&[24.0, 48.0]);
        let err = ArrivalAnalysis::over(&trace)
            .profile(SystemId::new(1), FailureClass::Any)
            .unwrap_err();
        assert!(err.to_string().contains("not enough data"), "{err}");
    }

    #[test]
    fn unknown_system_is_an_error() {
        let trace = trace_with_gaps(&[24.0; 100]);
        assert!(ArrivalAnalysis::over(&trace)
            .profile(SystemId::new(42), FailureClass::Any)
            .is_err());
    }

    #[test]
    fn daily_acf_has_requested_lags() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = hpcfail_stats::dist::Exponential::new(1.0 / 10.0);
        let gaps: Vec<f64> = (0..2000).map(|_| d.sample(&mut rng)).collect();
        let trace = trace_with_gaps(&gaps);
        let profile = ArrivalAnalysis::over(&trace)
            .profile(SystemId::new(1), FailureClass::Any)
            .unwrap();
        assert_eq!(profile.daily_acf.len(), 7);
    }
}
