//! Section X: putting it all together — the joint regression of node
//! outages on usage, physical location and temperature (Tables I-III).
//!
//! The response is the total number of outages in a node's lifetime;
//! the predictors are Table I's: `avg_temp`, `max_temp`, `temp_var`,
//! `num_hightemp`, `num_jobs`, `util` and `PIR` (position in rack).
//! Both Poisson and negative-binomial (ML-theta) models are fitted,
//! optionally with node 0 removed (the paper's robustness check).

use hpcfail_stats::glm::{fit_negative_binomial, Family, GlmError, GlmFit, GlmModel};
use hpcfail_store::features::{node_features, NodeFeatures};
use hpcfail_store::trace::Trace;
use hpcfail_types::prelude::*;

/// Which regression family to fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StudyFamily {
    /// Poisson regression (Table II).
    Poisson,
    /// Negative-binomial regression with ML-estimated theta (Table III).
    NegativeBinomial,
}

impl StudyFamily {
    /// Both families in table order.
    pub const ALL: [StudyFamily; 2] = [StudyFamily::Poisson, StudyFamily::NegativeBinomial];

    /// The wire label (`poisson` / `negative-binomial`).
    pub const fn label(self) -> &'static str {
        match self {
            StudyFamily::Poisson => "poisson",
            StudyFamily::NegativeBinomial => "negative-binomial",
        }
    }
}

impl std::fmt::Display for StudyFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing a [`StudyFamily`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFamilyError(String);

impl std::fmt::Display for ParseFamilyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown regression family {:?}, expected poisson or negative-binomial",
            self.0
        )
    }
}

impl std::error::Error for ParseFamilyError {}

impl std::str::FromStr for StudyFamily {
    type Err = ParseFamilyError;

    /// Accepts the wire labels with `-`/`_`/space treated
    /// interchangeably, plus the shorthand `nb`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut key = s.to_ascii_lowercase();
        key.retain(|c| !matches!(c, '-' | '_' | ' '));
        match key.as_str() {
            "poisson" => Ok(StudyFamily::Poisson),
            "negativebinomial" | "negbin" | "nb" => Ok(StudyFamily::NegativeBinomial),
            _ => Err(ParseFamilyError(s.to_owned())),
        }
    }
}

/// The Table I predictor names, in table order.
pub const PREDICTORS: [&str; 7] = [
    "avg_temp",
    "max_temp",
    "temp_var",
    "num_hightemp",
    "num_jobs",
    "util",
    "PIR",
];

/// The Section X joint regression study.
#[derive(Debug, Clone, Copy)]
pub struct RegressionStudy<'a> {
    trace: &'a Trace,
}

impl<'a> RegressionStudy<'a> {
    /// Creates the study over `trace`.
    #[deprecated(note = "construct through `hpcfail_core::engine::Engine::regression` instead")]
    pub fn new(trace: &'a Trace) -> Self {
        RegressionStudy::over(trace)
    }

    /// Engine-internal constructor: the public entry point is
    /// [`crate::engine::Engine::regression`].
    pub(crate) fn over(trace: &'a Trace) -> Self {
        RegressionStudy { trace }
    }

    /// The assembled Table I feature matrix for a system (only nodes
    /// with temperature samples and a layout placement yield rows).
    pub fn features(&self, system: SystemId) -> Vec<NodeFeatures> {
        match self.trace.system(system) {
            Some(s) => node_features(s),
            None => Vec::new(),
        }
    }

    /// Fits the joint model.
    ///
    /// # Errors
    ///
    /// [`GlmError`] when the system lacks the required data or the fit
    /// fails (e.g. collinear predictors).
    pub fn fit(
        &self,
        system: SystemId,
        family: StudyFamily,
        exclude_node0: bool,
    ) -> Result<GlmFit, GlmError> {
        let mut rows = self.features(system);
        if exclude_node0 {
            rows.retain(|r| r.node != NodeId::new(0));
        }
        if rows.len() < PREDICTORS.len() + 1 {
            return Err(GlmError::Underdetermined);
        }
        let y: Vec<f64> = rows.iter().map(|r| r.fails_count as f64).collect();
        let columns: [(&str, Vec<f64>); 7] = [
            ("avg_temp", rows.iter().map(|r| r.avg_temp).collect()),
            ("max_temp", rows.iter().map(|r| r.max_temp).collect()),
            ("temp_var", rows.iter().map(|r| r.temp_var).collect()),
            (
                "num_hightemp",
                rows.iter().map(|r| r.num_hightemp).collect(),
            ),
            ("num_jobs", rows.iter().map(|r| r.num_jobs).collect()),
            ("util", rows.iter().map(|r| r.util).collect()),
            ("PIR", rows.iter().map(|r| r.pir).collect()),
        ];
        let mut model = GlmModel::new(Family::Poisson);
        for (name, values) in &columns {
            // Constant columns (e.g. no node ever crossed the 40 C
            // warning threshold) are not estimable; drop them rather
            // than fail on a singular design.
            let first = values[0];
            if values.iter().any(|v| (v - first).abs() > 1e-12) {
                model.term(name, values);
            }
        }
        match family {
            StudyFamily::Poisson => model.fit(&y),
            StudyFamily::NegativeBinomial => fit_negative_binomial(&model, &y),
        }
    }

    /// The paper's follow-up: refit keeping only the predictors that
    /// were significant at `alpha` in `previous` ("when rerunning the
    /// model with only the significant predictors, the significance
    /// level of max_temp drops").
    ///
    /// # Errors
    ///
    /// [`GlmError::Underdetermined`] when no predictor was significant;
    /// otherwise propagates fitting errors.
    pub fn refit_significant_only(
        &self,
        system: SystemId,
        family: StudyFamily,
        previous: &GlmFit,
        alpha: f64,
    ) -> Result<GlmFit, GlmError> {
        let keep = Self::significant_predictors(previous, alpha);
        if keep.is_empty() {
            return Err(GlmError::Underdetermined);
        }
        let rows = self.features(system);
        if rows.len() < keep.len() + 1 {
            return Err(GlmError::Underdetermined);
        }
        let y: Vec<f64> = rows.iter().map(|r| r.fails_count as f64).collect();
        let mut model = GlmModel::new(Family::Poisson);
        for name in keep {
            let values: Vec<f64> = rows
                .iter()
                .map(|r| match name {
                    "avg_temp" => r.avg_temp,
                    "max_temp" => r.max_temp,
                    "temp_var" => r.temp_var,
                    "num_hightemp" => r.num_hightemp,
                    "num_jobs" => r.num_jobs,
                    "util" => r.util,
                    "PIR" => r.pir,
                    _ => unreachable!("PREDICTORS is exhaustive"),
                })
                .collect();
            model.term(name, &values);
        }
        match family {
            StudyFamily::Poisson => model.fit(&y),
            StudyFamily::NegativeBinomial => fit_negative_binomial(&model, &y),
        }
    }

    /// Tables II and III in one call: `(poisson, negative_binomial)`.
    ///
    /// # Errors
    ///
    /// Propagates the first fitting error.
    pub fn both_tables(&self, system: SystemId) -> Result<(GlmFit, GlmFit), GlmError> {
        Ok((
            self.fit(system, StudyFamily::Poisson, false)?,
            self.fit(system, StudyFamily::NegativeBinomial, false)?,
        ))
    }

    /// Names of predictors significant at `alpha` in a fit, in table
    /// order.
    pub fn significant_predictors(fit: &GlmFit, alpha: f64) -> Vec<&'static str> {
        PREDICTORS
            .into_iter()
            .filter(|name| {
                fit.coefficient(name)
                    .is_some_and(|c| c.significant_at(alpha))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcfail_store::trace::SystemTraceBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// 60 nodes with layout + temperature + jobs; failures driven by
    /// num_jobs, not by temperature or PIR.
    pub(super) fn build() -> Trace {
        let config = SystemConfig {
            id: SystemId::new(20),
            name: "t".into(),
            nodes: 60,
            procs_per_node: 4,
            hardware: HardwareClass::Smp4Way,
            start: Timestamp::EPOCH,
            end: Timestamp::from_days(500.0),
            has_layout: true,
            has_job_log: true,
            has_temperature: true,
        };
        let mut b = SystemTraceBuilder::new(config);
        let sys = SystemId::new(20);
        let mut rng = StdRng::seed_from_u64(5);
        let layout: MachineLayout = (0..60u32)
            .map(|n| {
                (
                    NodeId::new(n),
                    NodeLocation {
                        rack: RackId::new((n / 5) as u16),
                        position_in_rack: (n % 5 + 1) as u8,
                        room_row: 0,
                        room_col: (n / 5) as u16,
                    },
                )
            })
            .collect();
        b.layout(layout);
        let mut job_id = 0u64;
        for n in 0..60u32 {
            // Temperature unrelated to anything.
            for d in 0..25 {
                b.push_temperature(TemperatureSample {
                    system: sys,
                    node: NodeId::new(n),
                    time: Timestamp::from_days(d as f64 * 20.0),
                    celsius: 25.0 + rng.gen_range(-3.0..3.0),
                });
            }
            // Jobs: node index determines load; durations random so
            // utilization is not collinear with job count.
            let jobs = (n % 10 + 1) as usize;
            for k in 0..jobs {
                let run = rng.gen_range(2.0..30.0);
                b.push_job(JobRecord {
                    system: sys,
                    job_id: JobId::new(job_id),
                    user: UserId::new(1),
                    submit: Timestamp::from_days(k as f64 * 40.0),
                    dispatch: Timestamp::from_days(k as f64 * 40.0 + 0.1),
                    end: Timestamp::from_days(k as f64 * 40.0 + 0.1 + run),
                    procs: 4,
                    nodes: vec![NodeId::new(n)],
                });
                job_id += 1;
            }
            // Failures proportional to job count plus noise.
            let mu = jobs as f64 * 1.5;
            let count = (mu + rng.gen_range(0.0..2.0)) as u32;
            for k in 0..count {
                b.push_failure(FailureRecord::new(
                    sys,
                    NodeId::new(n),
                    Timestamp::from_days(7.0 + k as f64 * 43.0 + (n % 7) as f64),
                    RootCause::Hardware,
                    SubCause::None,
                ));
            }
        }
        let mut trace = Trace::new();
        trace.insert_system(b.build());
        trace
    }

    #[test]
    fn features_assembled_for_all_nodes() {
        let trace = build();
        let study = RegressionStudy::over(&trace);
        let rows = study.features(SystemId::new(20));
        assert_eq!(rows.len(), 60);
        assert!(rows.iter().all(|r| r.pir >= 1.0 && r.pir <= 5.0));
        assert!(rows.iter().any(|r| r.fails_count > 0));
    }

    #[test]
    fn usage_significant_temperature_not() {
        let trace = build();
        let study = RegressionStudy::over(&trace);
        let fit = study
            .fit(SystemId::new(20), StudyFamily::Poisson, false)
            .unwrap();
        let sig = RegressionStudy::significant_predictors(&fit, 0.01);
        assert!(
            sig.contains(&"num_jobs") || sig.contains(&"util"),
            "sig = {sig:?}"
        );
        assert!(!sig.contains(&"avg_temp"), "sig = {sig:?}");
        assert!(!sig.contains(&"PIR"), "sig = {sig:?}");
    }

    #[test]
    fn nb_table_fits_too() {
        let trace = build();
        let study = RegressionStudy::over(&trace);
        let (pois, nb) = study.both_tables(SystemId::new(20)).unwrap();
        // Intercept + 7 predictors, minus any constant column that was
        // dropped (num_hightemp is all zero in this fixture).
        assert_eq!(pois.n_params(), 7);
        assert!(pois.coefficient("num_hightemp").is_none());
        assert_eq!(nb.n_params(), 7);
        assert!(matches!(nb.family, Family::NegativeBinomial { .. }));
        // Same sign on the load coefficient.
        let p = pois.coefficient("num_jobs").unwrap().estimate;
        let n = nb.coefficient("num_jobs").unwrap().estimate;
        assert!(p * n > 0.0);
    }

    #[test]
    fn refit_significant_only_keeps_signal() {
        let trace = build();
        let study = RegressionStudy::over(&trace);
        let full = study
            .fit(SystemId::new(20), StudyFamily::Poisson, false)
            .unwrap();
        let refit = study
            .refit_significant_only(SystemId::new(20), StudyFamily::Poisson, &full, 0.01)
            .unwrap();
        // Fewer parameters, and the load signal survives.
        assert!(refit.n_params() < full.n_params());
        assert!(refit
            .coefficient("num_jobs")
            .is_some_and(|c| c.significant_at(0.01)));
    }

    #[test]
    fn refit_with_nothing_significant_errors() {
        let trace = build();
        let study = RegressionStudy::over(&trace);
        let full = study
            .fit(SystemId::new(20), StudyFamily::Poisson, false)
            .unwrap();
        // Absurd alpha: nothing passes.
        let err = study
            .refit_significant_only(SystemId::new(20), StudyFamily::Poisson, &full, 1e-300)
            .unwrap_err();
        assert_eq!(err, GlmError::Underdetermined);
    }

    #[test]
    fn exclude_node0_still_fits() {
        let trace = build();
        let study = RegressionStudy::over(&trace);
        let fit = study
            .fit(SystemId::new(20), StudyFamily::Poisson, true)
            .unwrap();
        assert_eq!(fit.n, 59);
    }

    #[test]
    fn unknown_system_underdetermined() {
        let trace = build();
        let study = RegressionStudy::over(&trace);
        let err = study
            .fit(SystemId::new(9), StudyFamily::Poisson, false)
            .unwrap_err();
        assert_eq!(err, GlmError::Underdetermined);
    }
}

#[cfg(test)]
mod debug_fit {
    use super::*;

    #[test]
    #[ignore]
    fn print_fit() {
        let trace = super::tests::build();
        let study = RegressionStudy::over(&trace);
        let fit = study
            .fit(SystemId::new(20), StudyFamily::Poisson, false)
            .unwrap();
        for c in &fit.coefficients {
            println!(
                "{}: est {:.5} se {:.5} z {:.2} p {:.4}",
                c.name, c.estimate, c.std_error, c.z_value, c.p_value
            );
        }
    }
}
