//! Extension: turning the correlations into a failure predictor.
//!
//! The paper motivates its correlation findings with proactive uses —
//! checkpoint scheduling and job migration. This module makes that
//! concrete with the simplest possible alarm rule: *after a failure of
//! class X on a node, flag that node for the next day/week/month*.
//! Evaluation reports precision (how often a flagged window really
//! contains a failure), recall (how many failures fall inside flagged
//! windows) and the cost (fraction of node-time flagged).

use hpcfail_store::trace::{SystemTrace, Trace};
use hpcfail_types::prelude::*;

/// The alarm rule: flag a node for `window` after a `trigger` failure.
///
/// # Examples
///
/// ```
/// use hpcfail_core::predict::AlarmRule;
/// use hpcfail_synth::prelude::*;
/// use hpcfail_types::prelude::*;
///
/// let store = FleetSpec::demo().generate(1).into_store();
/// let rule = AlarmRule { trigger: FailureClass::Any, window: Window::Week };
/// let eval = rule.evaluate_group(&store, SystemGroup::Group1);
/// // Flagged windows catch failures far out of proportion to the
/// // node-time they cover.
/// assert!(eval.recall() > eval.flagged_fraction());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlarmRule {
    /// The failure class that raises the alarm.
    pub trigger: FailureClass,
    /// How long the node stays flagged.
    pub window: Window,
}

/// Evaluation of an [`AlarmRule`] on a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlarmEvaluation {
    /// Alarms raised (trigger failures with an observed window).
    pub alarms: u64,
    /// Alarms whose window contained at least one further failure.
    pub correct_alarms: u64,
    /// Failures that fell inside at least one flagged window.
    pub caught_failures: u64,
    /// All failures that *could* be caught (any failure preceded by
    /// enough observation time for a trigger to exist).
    pub total_failures: u64,
    /// Node-seconds flagged.
    pub flagged_seconds: u64,
    /// Total observed node-seconds.
    pub total_seconds: u64,
}

impl AlarmEvaluation {
    /// Fraction of alarms that predicted a real failure.
    pub fn precision(&self) -> f64 {
        if self.alarms == 0 {
            0.0
        } else {
            self.correct_alarms as f64 / self.alarms as f64
        }
    }

    /// Fraction of failures caught inside a flagged window.
    pub fn recall(&self) -> f64 {
        if self.total_failures == 0 {
            0.0
        } else {
            self.caught_failures as f64 / self.total_failures as f64
        }
    }

    /// Fraction of node-time spent flagged — the cost of acting on the
    /// alarms (e.g. extra checkpoints).
    pub fn flagged_fraction(&self) -> f64 {
        if self.total_seconds == 0 {
            0.0
        } else {
            self.flagged_seconds as f64 / self.total_seconds as f64
        }
    }

    fn merge(self, other: AlarmEvaluation) -> AlarmEvaluation {
        AlarmEvaluation {
            alarms: self.alarms + other.alarms,
            correct_alarms: self.correct_alarms + other.correct_alarms,
            caught_failures: self.caught_failures + other.caught_failures,
            total_failures: self.total_failures + other.total_failures,
            flagged_seconds: self.flagged_seconds + other.flagged_seconds,
            total_seconds: self.total_seconds + other.total_seconds,
        }
    }

    fn empty() -> AlarmEvaluation {
        AlarmEvaluation {
            alarms: 0,
            correct_alarms: 0,
            caught_failures: 0,
            total_failures: 0,
            flagged_seconds: 0,
            total_seconds: 0,
        }
    }
}

impl AlarmRule {
    /// Evaluates the rule over every system of a group.
    pub fn evaluate_group(&self, trace: &Trace, group: SystemGroup) -> AlarmEvaluation {
        trace
            .group_systems(group)
            .map(|s| self.evaluate_system(s))
            .fold(AlarmEvaluation::empty(), AlarmEvaluation::merge)
    }

    /// Evaluates the rule over one system.
    pub fn evaluate_system(&self, system: &SystemTrace) -> AlarmEvaluation {
        let mut eval = AlarmEvaluation::empty();
        let w = self.window.duration();
        let config = system.config();
        eval.total_seconds =
            config.nodes as u64 * config.observation_span().as_seconds().max(0) as u64;

        for node in system.nodes() {
            // A node with no failures raises no alarms, flags no time,
            // and contributes nothing to recall — skip before
            // collecting. On LANL-shaped traces most nodes are quiet
            // most of the observation span.
            if system.node_failure_count(node) == 0 {
                continue;
            }
            let failures: Vec<&FailureRecord> = system.node_failures(node).collect();
            // Flagged intervals from triggers (merged union for cost).
            let mut intervals: Vec<(i64, i64)> = Vec::new();
            for f in &failures {
                if self.trigger.matches(f) && system.window_observed(f.time, self.window) {
                    eval.alarms += 1;
                    if system.node_has_failure_in(node, FailureClass::Any, f.time, f.time + w) {
                        eval.correct_alarms += 1;
                    }
                    intervals.push((f.time.as_seconds(), (f.time + w).as_seconds()));
                }
            }
            intervals.sort_unstable();
            let mut covered = 0i64;
            let mut current: Option<(i64, i64)> = None;
            for (lo, hi) in intervals {
                match current {
                    Some((clo, chi)) if lo <= chi => current = Some((clo, chi.max(hi))),
                    Some((clo, chi)) => {
                        covered += chi - clo;
                        current = Some((lo, hi));
                        let _ = clo;
                    }
                    None => current = Some((lo, hi)),
                }
            }
            if let Some((clo, chi)) = current {
                covered += chi - clo;
            }
            eval.flagged_seconds += covered.max(0) as u64;

            // Recall: failures preceded by a matching trigger within w.
            for (i, f) in failures.iter().enumerate() {
                eval.total_failures += 1;
                let earliest = f.time - w;
                let caught = failures[..i]
                    .iter()
                    .rev()
                    .any(|g| g.time >= earliest && g.time < f.time && self.trigger.matches(g));
                if caught {
                    eval.caught_failures += 1;
                }
            }
        }
        eval
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcfail_store::trace::SystemTraceBuilder;

    fn build(failures: &[(u32, f64, RootCause)]) -> Trace {
        let config = SystemConfig {
            id: SystemId::new(1),
            name: "t".into(),
            nodes: 3,
            procs_per_node: 4,
            hardware: HardwareClass::Smp4Way,
            start: Timestamp::EPOCH,
            end: Timestamp::from_days(100.0),
            has_layout: false,
            has_job_log: false,
            has_temperature: false,
        };
        let mut b = SystemTraceBuilder::new(config);
        for &(node, day, root) in failures {
            b.push_failure(FailureRecord::new(
                SystemId::new(1),
                NodeId::new(node),
                Timestamp::from_days(day),
                root,
                SubCause::None,
            ));
        }
        let mut trace = Trace::new();
        trace.insert_system(b.build());
        trace
    }

    #[test]
    fn precision_and_recall_by_hand() {
        // Node 0: net failure day 10, any failure day 12 (caught),
        // isolated hw failure day 50 (not caught, alarm misses).
        let trace = build(&[
            (0, 10.0, RootCause::Network),
            (0, 12.0, RootCause::Hardware),
            (0, 50.0, RootCause::Network),
        ]);
        let rule = AlarmRule {
            trigger: FailureClass::Root(RootCause::Network),
            window: Window::Week,
        };
        let eval = rule.evaluate_group(&trace, SystemGroup::Group1);
        assert_eq!(eval.alarms, 2);
        assert_eq!(eval.correct_alarms, 1);
        assert!((eval.precision() - 0.5).abs() < 1e-12);
        // 3 failures total; only the day-12 one follows a net trigger.
        assert_eq!(eval.total_failures, 3);
        assert_eq!(eval.caught_failures, 1);
        assert!((eval.recall() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn flagged_fraction_unions_overlaps() {
        // Two overlapping week-windows on node 0: days 10-17 and 12-19,
        // union 9 days of 300 node-days.
        let trace = build(&[(0, 10.0, RootCause::Network), (0, 12.0, RootCause::Network)]);
        let rule = AlarmRule {
            trigger: FailureClass::Root(RootCause::Network),
            window: Window::Week,
        };
        let eval = rule.evaluate_group(&trace, SystemGroup::Group1);
        assert!((eval.flagged_fraction() - 9.0 / 300.0).abs() < 1e-9);
    }

    #[test]
    fn any_trigger_catches_followups() {
        let trace = build(&[
            (1, 20.0, RootCause::Hardware),
            (1, 21.0, RootCause::Software),
            (1, 22.0, RootCause::Software),
        ]);
        let rule = AlarmRule {
            trigger: FailureClass::Any,
            window: Window::Day,
        };
        let eval = rule.evaluate_group(&trace, SystemGroup::Group1);
        assert_eq!(eval.alarms, 3);
        assert_eq!(eval.correct_alarms, 2);
        assert_eq!(eval.caught_failures, 2); // failures 2 and 3
    }

    #[test]
    fn no_triggers_gives_zero_rates() {
        let trace = build(&[(0, 10.0, RootCause::Hardware)]);
        let rule = AlarmRule {
            trigger: FailureClass::Root(RootCause::Network),
            window: Window::Week,
        };
        let eval = rule.evaluate_group(&trace, SystemGroup::Group1);
        assert_eq!(eval.alarms, 0);
        assert_eq!(eval.precision(), 0.0);
        assert_eq!(eval.recall(), 0.0);
        assert_eq!(eval.flagged_fraction(), 0.0);
    }
}
