//! Section VI: are some users more prone to node failures than others?
//!
//! A user "experiences" a node failure when one of their running jobs
//! sits on a node that fails (application-software failures are not in
//! the failure log, so the attribution only covers node outages, as in
//! the paper). The analysis normalizes per-user failure counts by the
//! processor-days the user consumed, then tests heterogeneity with the
//! paper's saturated-vs-common-rate Poisson ANOVA.

use hpcfail_stats::htest::{anova_lrt, poisson_common_rate_ll, poisson_saturated_ll, TestResult};
use hpcfail_store::trace::{SystemTrace, Trace};
use hpcfail_types::prelude::*;
use std::collections::BTreeMap;

/// Per-user usage and failure exposure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UserStat {
    /// The user.
    pub user: UserId,
    /// Processor-days consumed across all their jobs.
    pub processor_days: f64,
    /// Jobs submitted.
    pub jobs: u64,
    /// Jobs hit by a node failure while running.
    pub node_failures: u64,
}

impl UserStat {
    /// Failures per processor-day — the Figure 8 y-axis.
    pub fn failures_per_processor_day(&self) -> f64 {
        if self.processor_days <= 0.0 {
            0.0
        } else {
            self.node_failures as f64 / self.processor_days
        }
    }
}

/// The Section VI per-user analysis.
#[derive(Debug, Clone, Copy)]
pub struct UserAnalysis<'a> {
    trace: &'a Trace,
}

impl<'a> UserAnalysis<'a> {
    /// Creates the analysis over `trace`.
    #[deprecated(note = "construct through `hpcfail_core::engine::Engine::users` instead")]
    pub fn new(trace: &'a Trace) -> Self {
        UserAnalysis::over(trace)
    }

    /// Engine-internal constructor: the public entry point is
    /// [`crate::engine::Engine::users`].
    pub(crate) fn over(trace: &'a Trace) -> Self {
        UserAnalysis { trace }
    }

    /// Per-user statistics for one system (empty without a job log).
    pub fn user_stats(&self, system: SystemId) -> Vec<UserStat> {
        let Some(s) = self.trace.system(system) else {
            return Vec::new();
        };
        if s.jobs().is_empty() {
            return Vec::new();
        }
        let mut stats: BTreeMap<UserId, UserStat> = BTreeMap::new();
        for job in s.jobs() {
            let entry = stats.entry(job.user).or_insert(UserStat {
                user: job.user,
                processor_days: 0.0,
                jobs: 0,
                node_failures: 0,
            });
            entry.processor_days += job.processor_days();
            entry.jobs += 1;
        }
        for (user, hits) in attribute_failures(s) {
            if let Some(entry) = stats.get_mut(&user) {
                entry.node_failures += hits;
            }
        }
        stats.into_values().collect()
    }

    /// The `k` heaviest users by processor-days, heaviest first — the
    /// paper's "50 heaviest users".
    pub fn heaviest_users(&self, system: SystemId, k: usize) -> Vec<UserStat> {
        let mut stats = self.user_stats(system);
        stats.sort_by(|a, b| b.processor_days.total_cmp(&a.processor_days));
        stats.truncate(k);
        stats
    }

    /// The paper's heterogeneity test: a saturated Poisson model (one
    /// rate per user) against a common-rate model, compared by ANOVA
    /// (likelihood-ratio chi-square).
    ///
    /// Returns `None` for fewer than two users with positive exposure.
    pub fn heterogeneity_test(&self, stats: &[UserStat]) -> Option<TestResult> {
        let filtered: Vec<&UserStat> = stats.iter().filter(|s| s.processor_days > 0.0).collect();
        if filtered.len() < 2 {
            return None;
        }
        let counts: Vec<f64> = filtered.iter().map(|s| s.node_failures as f64).collect();
        let exposure: Vec<f64> = filtered.iter().map(|s| s.processor_days).collect();
        let full = poisson_saturated_ll(&counts, &exposure);
        let reduced = poisson_common_rate_ll(&counts, &exposure);
        Some(anova_lrt(full, filtered.len(), reduced, 1))
    }
}

/// Counts, per user, the jobs that were running on a node when it
/// failed.
fn attribute_failures(system: &SystemTrace) -> BTreeMap<UserId, u64> {
    // Per-node job intervals sorted by dispatch, with the node's longest
    // runtime to bound the backward scan.
    let nodes = system.config().nodes as usize;
    let mut intervals: Vec<Vec<(i64, i64, UserId)>> = vec![Vec::new(); nodes];
    let mut max_run = vec![0i64; nodes];
    for job in system.jobs() {
        let d = job.dispatch.as_seconds();
        let e = job.end.as_seconds();
        if e <= d {
            continue;
        }
        for &node in &job.nodes {
            if node.index() < nodes {
                intervals[node.index()].push((d, e, job.user));
                max_run[node.index()] = max_run[node.index()].max(e - d);
            }
        }
    }
    for list in &mut intervals {
        list.sort_unstable_by_key(|&(d, _, _)| d);
    }

    let mut hits: BTreeMap<UserId, u64> = BTreeMap::new();
    for f in system.failures() {
        let ni = f.node.index();
        if ni >= nodes {
            continue;
        }
        let t = f.time.as_seconds();
        let list = &intervals[ni];
        let idx = list.partition_point(|&(d, _, _)| d <= t);
        let earliest = t - max_run[ni];
        for &(d, e, user) in list[..idx].iter().rev() {
            if d < earliest {
                break;
            }
            if e > t {
                *hits.entry(user).or_insert(0) += 1;
            }
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcfail_store::trace::SystemTraceBuilder;

    fn config() -> SystemConfig {
        SystemConfig {
            id: SystemId::new(8),
            name: "t".into(),
            nodes: 4,
            procs_per_node: 4,
            hardware: HardwareClass::Smp4Way,
            start: Timestamp::EPOCH,
            end: Timestamp::from_days(100.0),
            has_layout: false,
            has_job_log: true,
            has_temperature: false,
        }
    }

    fn job(id: u64, user: u32, node: u32, start: f64, end: f64) -> JobRecord {
        JobRecord {
            system: SystemId::new(8),
            job_id: JobId::new(id),
            user: UserId::new(user),
            submit: Timestamp::from_days(start - 0.01),
            dispatch: Timestamp::from_days(start),
            end: Timestamp::from_days(end),
            procs: 4,
            nodes: vec![NodeId::new(node)],
        }
    }

    fn failure(node: u32, day: f64) -> FailureRecord {
        FailureRecord::new(
            SystemId::new(8),
            NodeId::new(node),
            Timestamp::from_days(day),
            RootCause::Hardware,
            SubCause::None,
        )
    }

    #[test]
    fn attribution_matches_running_jobs() {
        let mut b = SystemTraceBuilder::new(config());
        b.push_job(job(1, 1, 0, 10.0, 20.0)); // user 1 on node 0
        b.push_job(job(2, 2, 0, 14.0, 16.0)); // user 2 overlaps failure
        b.push_job(job(3, 3, 1, 10.0, 20.0)); // user 3 on another node
        b.push_failure(failure(0, 15.0)); // hits users 1 and 2
        b.push_failure(failure(0, 50.0)); // hits nobody (no job running)
        let mut trace = Trace::new();
        trace.insert_system(b.build());
        let stats = UserAnalysis::over(&trace).user_stats(SystemId::new(8));
        let by_user: BTreeMap<u32, &UserStat> = stats.iter().map(|s| (s.user.raw(), s)).collect();
        assert_eq!(by_user[&1].node_failures, 1);
        assert_eq!(by_user[&2].node_failures, 1);
        assert_eq!(by_user[&3].node_failures, 0);
    }

    #[test]
    fn processor_days_accumulate() {
        let mut b = SystemTraceBuilder::new(config());
        b.push_job(job(1, 1, 0, 0.0, 10.0)); // 4 procs x 10 days
        b.push_job(job(2, 1, 1, 0.0, 5.0)); // 4 procs x 5 days
        let mut trace = Trace::new();
        trace.insert_system(b.build());
        let stats = UserAnalysis::over(&trace).user_stats(SystemId::new(8));
        assert_eq!(stats.len(), 1);
        assert!((stats[0].processor_days - 60.0).abs() < 1e-6);
        assert_eq!(stats[0].jobs, 2);
    }

    #[test]
    fn heaviest_users_ordering() {
        let mut b = SystemTraceBuilder::new(config());
        b.push_job(job(1, 1, 0, 0.0, 1.0));
        b.push_job(job(2, 2, 0, 2.0, 22.0));
        b.push_job(job(3, 3, 0, 30.0, 35.0));
        let mut trace = Trace::new();
        trace.insert_system(b.build());
        let top = UserAnalysis::over(&trace).heaviest_users(SystemId::new(8), 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].user, UserId::new(2));
        assert_eq!(top[1].user, UserId::new(3));
    }

    #[test]
    fn heterogeneity_detected_for_unequal_rates() {
        let stats: Vec<UserStat> = (0..20)
            .map(|i| UserStat {
                user: UserId::new(i),
                processor_days: 1000.0,
                jobs: 10,
                node_failures: if i < 3 { 60 } else { 2 },
            })
            .collect();
        let trace = Trace::new();
        let t = UserAnalysis::over(&trace)
            .heterogeneity_test(&stats)
            .unwrap();
        assert!(t.significant_at(0.01));
    }

    #[test]
    fn homogeneous_rates_not_flagged() {
        let stats: Vec<UserStat> = (0..20)
            .map(|i| UserStat {
                user: UserId::new(i),
                processor_days: 1000.0,
                jobs: 10,
                node_failures: 5,
            })
            .collect();
        let trace = Trace::new();
        let t = UserAnalysis::over(&trace)
            .heterogeneity_test(&stats)
            .unwrap();
        assert!(!t.significant_at(0.05));
    }

    #[test]
    fn failures_per_processor_day() {
        let s = UserStat {
            user: UserId::new(1),
            processor_days: 200.0,
            jobs: 5,
            node_failures: 4,
        };
        assert!((s.failures_per_processor_day() - 0.02).abs() < 1e-12);
        let zero = UserStat {
            processor_days: 0.0,
            ..s
        };
        assert_eq!(zero.failures_per_processor_day(), 0.0);
    }
}
