//! Section IV: do some nodes in a system fail differently from others?
//!
//! Covers Figure 4 (failures per node id + chi-square test of equal
//! rates), Figure 5 (root-cause breakdown of failure-prone nodes vs the
//! rest) and Figure 6 (per-type day/week/month failure probabilities of
//! node 0 vs the rest).

use hpcfail_stats::htest::{chi_square_equal_proportions, TestResult};
use hpcfail_stats::proportion::Proportion;
use hpcfail_store::trace::{SystemTrace, Trace};
use hpcfail_types::prelude::*;
use std::collections::BTreeMap;

/// Comparison of one node's failure probability against the pooled rest
/// of the system (one pair of bars in Figure 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeVsRest {
    /// The singled-out node's probability of a class failure in a
    /// random window.
    pub node: Proportion,
    /// The pooled probability over every other node.
    pub rest: Proportion,
}

impl NodeVsRest {
    /// Factor increase of the node over the rest (the "1926x" style
    /// annotations); `None` when the rest never fails.
    pub fn factor(&self) -> Option<f64> {
        self.node.factor_over(self.rest)
    }
}

/// The Section IV node-heterogeneity analysis.
#[derive(Debug, Clone, Copy)]
pub struct NodeAnalysis<'a> {
    trace: &'a Trace,
}

impl<'a> NodeAnalysis<'a> {
    /// Creates the analysis over `trace`.
    #[deprecated(note = "construct through `hpcfail_core::engine::Engine::nodes` instead")]
    pub fn new(trace: &'a Trace) -> Self {
        NodeAnalysis::over(trace)
    }

    /// Engine-internal constructor: the public entry point is
    /// [`crate::engine::Engine::nodes`].
    pub(crate) fn over(trace: &'a Trace) -> Self {
        NodeAnalysis { trace }
    }

    fn system(&self, id: SystemId) -> Option<&'a SystemTrace> {
        self.trace.system(id)
    }

    /// Figure 4: total failures per node id.
    pub fn failure_counts(&self, system: SystemId) -> Vec<u64> {
        match self.system(system) {
            Some(s) => s.nodes().map(|n| s.node_failure_count(n) as u64).collect(),
            None => Vec::new(),
        }
    }

    /// The node with the most failures.
    pub fn most_failure_prone(&self, system: SystemId) -> Option<NodeId> {
        let s = self.system(system)?;
        s.nodes().max_by_key(|&n| s.node_failure_count(n))
    }

    /// Chi-square test of "all nodes fail at equal rates", optionally
    /// excluding some nodes (the paper repeats the test without
    /// node 0). Counts failures of `class` only.
    ///
    /// Returns `None` when fewer than two nodes remain.
    pub fn equal_rates_test(
        &self,
        system: SystemId,
        class: FailureClass,
        exclude: &[NodeId],
    ) -> Option<TestResult> {
        let s = self.system(system)?;
        let counts: Vec<f64> = s
            .nodes()
            .filter(|n| !exclude.contains(n))
            .map(|n| s.node_failures(n).filter(|f| class.matches(f)).count() as f64)
            .collect();
        if counts.len() < 2 {
            return None;
        }
        let exposure = vec![1.0; counts.len()];
        Some(chi_square_equal_proportions(&counts, &exposure))
    }

    /// Figure 5: relative root-cause breakdown (shares summing to 1)
    /// over a set of nodes. Pass a single node for the node-0 bar or
    /// all other nodes for the system bar.
    pub fn root_cause_shares(
        &self,
        system: SystemId,
        nodes: &[NodeId],
    ) -> BTreeMap<RootCause, f64> {
        let Some(s) = self.system(system) else {
            return BTreeMap::new();
        };
        let mut counts: BTreeMap<RootCause, u64> = BTreeMap::new();
        let mut total = 0u64;
        for &n in nodes {
            for f in s.node_failures(n) {
                *counts.entry(f.root_cause).or_insert(0) += 1;
                total += 1;
            }
        }
        counts
            .into_iter()
            .map(|(root, c)| {
                (
                    root,
                    if total == 0 {
                        0.0
                    } else {
                        c as f64 / total as f64
                    },
                )
            })
            .collect()
    }

    /// Figure 6: probability of a `class` failure in a random window for
    /// `node` versus the pooled rest of the system.
    pub fn node_vs_rest(
        &self,
        system: SystemId,
        node: NodeId,
        class: FailureClass,
        window: Window,
    ) -> NodeVsRest {
        let Some(s) = self.system(system) else {
            return NodeVsRest {
                node: Proportion::EMPTY,
                rest: Proportion::EMPTY,
            };
        };
        let own = s.indexed_node_failure_baseline(node, class, window);
        // Rest-of-system = memoized full baseline minus the node's own
        // counts — an exact integer identity, so no per-node rescan.
        // Guard the out-of-range case: a node outside the system
        // contributes nothing, so "rest" is the full baseline.
        let full = s.indexed_failure_baseline(class, window);
        let rest = if node.raw() < s.config().nodes {
            hpcfail_store::query::WindowCounts {
                hits: full.hits - own.hits,
                total: full.total - own.total,
            }
        } else {
            full
        };
        NodeVsRest {
            node: Proportion::new(own.hits, own.total),
            rest: Proportion::new(rest.hits, rest.total),
        }
    }

    /// All nodes except `node` — the paper's "rest of nodes".
    pub fn rest_of(&self, system: SystemId, node: NodeId) -> Vec<NodeId> {
        match self.system(system) {
            Some(s) => s.nodes().filter(|&n| n != node).collect(),
            None => Vec::new(),
        }
    }

    /// Section IV-C: does a node's *position inside the rack* predict
    /// its failure rate? Chi-square over position groups (1 = bottom),
    /// pooling node failure counts per position. Node 0 is excluded —
    /// its login role would masquerade as a position effect.
    ///
    /// Returns `None` without a layout or with fewer than two occupied
    /// positions. The paper "could not find any clear patterns".
    pub fn position_in_rack_effect(&self, system: SystemId) -> Option<TestResult> {
        self.location_effect(system, |loc| loc.position_in_rack as u32)
    }

    /// Section IV-C: does the rack's *machine-room row* predict failure
    /// rates? Same construction as
    /// [`NodeAnalysis::position_in_rack_effect`].
    pub fn room_row_effect(&self, system: SystemId) -> Option<TestResult> {
        self.location_effect(system, |loc| loc.room_row as u32)
    }

    fn location_effect(
        &self,
        system: SystemId,
        group_of: impl Fn(&hpcfail_types::layout::NodeLocation) -> u32,
    ) -> Option<TestResult> {
        let s = self.system(system)?;
        let layout = s.layout()?;
        let mut counts: std::collections::BTreeMap<u32, (f64, f64)> =
            std::collections::BTreeMap::new();
        for node in s.nodes().filter(|&n| n != NodeId::new(0)) {
            let Some(loc) = layout.location(node) else {
                continue;
            };
            let entry = counts.entry(group_of(&loc)).or_insert((0.0, 0.0));
            entry.0 += s.node_failure_count(node) as f64;
            entry.1 += 1.0;
        }
        if counts.len() < 2 {
            return None;
        }
        let failures: Vec<f64> = counts.values().map(|&(f, _)| f).collect();
        let exposure: Vec<f64> = counts.values().map(|&(_, n)| n).collect();
        if exposure.contains(&0.0) {
            return None;
        }
        Some(chi_square_equal_proportions(&failures, &exposure))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcfail_store::trace::SystemTraceBuilder;

    fn build(failures: &[(u32, f64, RootCause)]) -> Trace {
        let config = SystemConfig {
            id: SystemId::new(20),
            name: "t".into(),
            nodes: 10,
            procs_per_node: 4,
            hardware: HardwareClass::Smp4Way,
            start: Timestamp::EPOCH,
            end: Timestamp::from_days(100.0),
            has_layout: false,
            has_job_log: false,
            has_temperature: false,
        };
        let mut b = SystemTraceBuilder::new(config);
        for &(node, day, root) in failures {
            b.push_failure(FailureRecord::new(
                SystemId::new(20),
                NodeId::new(node),
                Timestamp::from_days(day),
                root,
                SubCause::None,
            ));
        }
        let mut trace = Trace::new();
        trace.insert_system(b.build());
        trace
    }

    fn skewed_trace() -> Trace {
        // Node 0 fails 20 times; the rest once each.
        let mut failures = Vec::new();
        for i in 0..20 {
            failures.push((0u32, 1.0 + i as f64 * 4.0, RootCause::Software));
        }
        for n in 1..10u32 {
            failures.push((n, 5.0 * n as f64, RootCause::Hardware));
        }
        build(&failures)
    }

    #[test]
    fn failure_counts_per_node() {
        let trace = skewed_trace();
        let a = NodeAnalysis::over(&trace);
        let counts = a.failure_counts(SystemId::new(20));
        assert_eq!(counts.len(), 10);
        assert_eq!(counts[0], 20);
        assert!(counts[1..].iter().all(|&c| c == 1));
        assert_eq!(
            a.most_failure_prone(SystemId::new(20)),
            Some(NodeId::new(0))
        );
    }

    #[test]
    fn equal_rates_rejected_then_not() {
        let trace = skewed_trace();
        let a = NodeAnalysis::over(&trace);
        let all = a
            .equal_rates_test(SystemId::new(20), FailureClass::Any, &[])
            .unwrap();
        assert!(all.significant_at(0.01));
        // Without node 0 the rest are uniform.
        let rest = a
            .equal_rates_test(SystemId::new(20), FailureClass::Any, &[NodeId::new(0)])
            .unwrap();
        assert!(!rest.significant_at(0.05));
    }

    #[test]
    fn root_cause_shares_shift() {
        let trace = skewed_trace();
        let a = NodeAnalysis::over(&trace);
        let node0 = a.root_cause_shares(SystemId::new(20), &[NodeId::new(0)]);
        let rest = a.root_cause_shares(
            SystemId::new(20),
            &a.rest_of(SystemId::new(20), NodeId::new(0)),
        );
        // Node 0 is all software; the rest all hardware.
        assert_eq!(node0[&RootCause::Software], 1.0);
        assert_eq!(rest[&RootCause::Hardware], 1.0);
    }

    #[test]
    fn shares_sum_to_one() {
        let trace = skewed_trace();
        let a = NodeAnalysis::over(&trace);
        let all_nodes: Vec<NodeId> = (0..10).map(NodeId::new).collect();
        let shares = a.root_cause_shares(SystemId::new(20), &all_nodes);
        let total: f64 = shares.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn node_vs_rest_probabilities() {
        let trace = skewed_trace();
        let a = NodeAnalysis::over(&trace);
        let cmp = a.node_vs_rest(
            SystemId::new(20),
            NodeId::new(0),
            FailureClass::Any,
            Window::Day,
        );
        // Node 0: 20 distinct failure days of 100 windows.
        assert_eq!(cmp.node.successes(), 20);
        assert_eq!(cmp.node.trials(), 100);
        // Rest: 9 failures over 900 windows.
        assert_eq!(cmp.rest.successes(), 9);
        assert_eq!(cmp.rest.trials(), 900);
        assert!((cmp.factor().unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn per_type_test_only_where_type_skews() {
        let trace = skewed_trace();
        let a = NodeAnalysis::over(&trace);
        let sw = a
            .equal_rates_test(
                SystemId::new(20),
                FailureClass::Root(RootCause::Software),
                &[],
            )
            .unwrap();
        assert!(sw.significant_at(0.01));
        let hw = a
            .equal_rates_test(
                SystemId::new(20),
                FailureClass::Root(RootCause::Hardware),
                &[],
            )
            .unwrap();
        assert!(!hw.significant_at(0.05));
    }

    fn with_layout(per_position_failures: [u32; 5]) -> Trace {
        let config = SystemConfig {
            id: SystemId::new(18),
            name: "t".into(),
            nodes: 50,
            procs_per_node: 4,
            hardware: HardwareClass::Smp4Way,
            start: Timestamp::EPOCH,
            end: Timestamp::from_days(200.0),
            has_layout: true,
            has_job_log: false,
            has_temperature: false,
        };
        let mut b = hpcfail_store::trace::SystemTraceBuilder::new(config);
        let layout: MachineLayout = (0..50u32)
            .map(|n| {
                (
                    NodeId::new(n),
                    NodeLocation {
                        rack: RackId::new((n / 5) as u16),
                        position_in_rack: (n % 5 + 1) as u8,
                        room_row: (n / 25) as u16,
                        room_col: 0,
                    },
                )
            })
            .collect();
        b.layout(layout);
        for n in 1..50u32 {
            let pos = (n % 5) as usize;
            for k in 0..per_position_failures[pos] {
                b.push_failure(FailureRecord::new(
                    SystemId::new(18),
                    NodeId::new(n),
                    Timestamp::from_days(3.0 + k as f64 * 7.0 + n as f64),
                    RootCause::Hardware,
                    SubCause::None,
                ));
            }
        }
        let mut trace = Trace::new();
        trace.insert_system(b.build());
        trace
    }

    #[test]
    fn no_position_effect_when_uniform() {
        let trace = with_layout([2, 2, 2, 2, 2]);
        let a = NodeAnalysis::over(&trace);
        let t = a.position_in_rack_effect(SystemId::new(18)).unwrap();
        assert!(!t.significant_at(0.05), "p = {}", t.p_value);
        let t = a.room_row_effect(SystemId::new(18)).unwrap();
        assert!(!t.significant_at(0.05), "p = {}", t.p_value);
    }

    #[test]
    fn planted_position_effect_detected() {
        // Top slot fails 8x as often.
        let trace = with_layout([1, 1, 1, 1, 8]);
        let a = NodeAnalysis::over(&trace);
        let t = a.position_in_rack_effect(SystemId::new(18)).unwrap();
        assert!(t.significant_at(0.01), "p = {}", t.p_value);
    }

    #[test]
    fn location_effect_needs_layout() {
        let trace = skewed_trace(); // no layout
        let a = NodeAnalysis::over(&trace);
        assert!(a.position_in_rack_effect(SystemId::new(20)).is_none());
    }

    #[test]
    fn unknown_system_is_empty() {
        let trace = skewed_trace();
        let a = NodeAnalysis::over(&trace);
        assert!(a.failure_counts(SystemId::new(99)).is_empty());
        assert!(a.most_failure_prone(SystemId::new(99)).is_none());
        assert!(a
            .equal_rates_test(SystemId::new(99), FailureClass::Any, &[])
            .is_none());
    }
}
