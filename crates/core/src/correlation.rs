//! Section III: how are failures correlated in time and space?
//!
//! For a trigger failure class X and target class Y, the analysis
//! measures the probability that a node experiences a Y failure within
//! the day/week/month following an X failure — on the same node, on
//! another node of the same rack, or on another node of the same
//! system — and compares it against the probability in a random window.

use crate::estimate::ConditionalEstimate;
use hpcfail_store::query::WindowCounts;
use hpcfail_store::trace::{SystemTrace, Trace};
use hpcfail_types::prelude::*;

/// The spatial scope of a correlation question.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scope {
    /// Follow-up failures on the node that had the trigger failure
    /// (Section III-A).
    SameNode,
    /// Follow-up failures on *other* nodes in the trigger node's rack
    /// (Section III-B; needs a machine-room layout).
    SameRack,
    /// Follow-up failures on *other* nodes anywhere in the system
    /// (Section III-C).
    SameSystem,
}

impl Scope {
    /// All scopes in the paper's order.
    pub const ALL: [Scope; 3] = [Scope::SameNode, Scope::SameRack, Scope::SameSystem];

    /// A short label.
    pub const fn label(self) -> &'static str {
        match self {
            Scope::SameNode => "same-node",
            Scope::SameRack => "same-rack",
            Scope::SameSystem => "same-system",
        }
    }
}

impl std::fmt::Display for Scope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing a [`Scope`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScopeError(String);

impl std::fmt::Display for ParseScopeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown scope {:?}, expected same-node, same-rack or same-system",
            self.0
        )
    }
}

impl std::error::Error for ParseScopeError {}

impl std::str::FromStr for Scope {
    type Err = ParseScopeError;

    /// Accepts the label form (`same-node`) with `-`/`_`/space treated
    /// interchangeably, plus the bare short forms `node`/`rack`/`system`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut key = s.to_ascii_lowercase();
        key.retain(|c| !matches!(c, '-' | '_' | ' '));
        match key.as_str() {
            "samenode" | "node" => Ok(Scope::SameNode),
            "samerack" | "rack" => Ok(Scope::SameRack),
            "samesystem" | "system" => Ok(Scope::SameSystem),
            _ => Err(ParseScopeError(s.to_owned())),
        }
    }
}

/// The Section III correlation analysis over a trace.
///
/// # Examples
///
/// ```
/// use hpcfail_core::correlation::Scope;
/// use hpcfail_store::trace::{SystemTraceBuilder, Trace};
/// use hpcfail_types::prelude::*;
///
/// let config = SystemConfig {
///     id: SystemId::new(1), name: "demo".into(), nodes: 2,
///     procs_per_node: 4, hardware: HardwareClass::Smp4Way,
///     start: Timestamp::EPOCH, end: Timestamp::from_days(100.0),
///     has_layout: false, has_job_log: false, has_temperature: false,
/// };
/// let mut builder = SystemTraceBuilder::new(config);
/// for day in [10.0, 12.0, 40.0] {
///     builder.push_failure(FailureRecord::new(
///         SystemId::new(1), NodeId::new(0), Timestamp::from_days(day),
///         RootCause::Hardware, SubCause::None,
///     ));
/// }
/// let mut trace = Trace::new();
/// trace.insert_system(builder.build());
///
/// let engine = hpcfail_core::engine::Engine::new(trace);
/// let analysis = engine.correlation();
/// let e = analysis.system_conditional(
///     SystemId::new(1),
///     FailureClass::Any,
///     FailureClass::Any,
///     Window::Week,
///     Scope::SameNode,
/// );
/// // One of the three observed trigger windows contains a follow-up.
/// assert_eq!(e.conditional.trials(), 3);
/// assert_eq!(e.conditional.successes(), 1);
/// assert!(e.conditional.estimate() > e.baseline.estimate());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CorrelationAnalysis<'a> {
    trace: &'a Trace,
}

impl<'a> CorrelationAnalysis<'a> {
    /// Creates the analysis over `trace`.
    #[deprecated(note = "construct through `hpcfail_core::engine::Engine::correlation` instead")]
    pub fn new(trace: &'a Trace) -> Self {
        CorrelationAnalysis::over(trace)
    }

    /// Engine-internal constructor: the public entry point is
    /// [`crate::engine::Engine::correlation`].
    pub(crate) fn over(trace: &'a Trace) -> Self {
        CorrelationAnalysis { trace }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &'a Trace {
        self.trace
    }

    /// Conditional probability of a `target` failure in the `window`
    /// after a `trigger` failure at the given `scope`, for one system.
    ///
    /// Returns an empty estimate for unknown systems, or for
    /// [`Scope::SameRack`] on systems without a layout.
    pub fn system_conditional(
        &self,
        system: SystemId,
        trigger: FailureClass,
        target: FailureClass,
        window: Window,
        scope: Scope,
    ) -> ConditionalEstimate {
        match self.trace.system(system) {
            Some(s) => conditional_for_system(s, trigger, target, window, scope),
            None => ConditionalEstimate::empty(),
        }
    }

    /// Conditional probability pooled over all systems of a group —
    /// the unit of the paper's group-1/group-2 bars.
    pub fn group_conditional(
        &self,
        group: SystemGroup,
        trigger: FailureClass,
        target: FailureClass,
        window: Window,
        scope: Scope,
    ) -> ConditionalEstimate {
        self.trace
            .group_systems(group)
            .map(|s| conditional_for_system(s, trigger, target, window, scope))
            .fold(ConditionalEstimate::empty(), ConditionalEstimate::merge)
    }

    /// Conditional probability pooled over *every* system in the trace
    /// (the Section VII/VIII analyses treat "LANL nodes" as one pool).
    ///
    /// The baseline is *stratified*: each system's random-window
    /// probability enters with weight proportional to that system's
    /// trigger count. Without this, pooling systems with very different
    /// base rates (group-2 nodes fail ~15x more often) would make any
    /// trigger concentrated in hot systems look predictive of
    /// everything — a composition artifact, not a correlation.
    pub fn fleet_conditional(
        &self,
        trigger: FailureClass,
        target: FailureClass,
        window: Window,
        scope: Scope,
    ) -> ConditionalEstimate {
        let parts: Vec<ConditionalEstimate> = self
            .trace
            .systems()
            .map(|s| conditional_for_system(s, trigger, target, window, scope))
            .collect();
        merge_stratified(&parts)
    }

    /// Figure 1(a)/2(left)/3 as data: for every trigger class of
    /// [`FailureClass::FIGURE1`], the probability of *any* follow-up
    /// failure in the week after, at the given scope, plus the random
    /// baseline (shared across bars).
    pub fn figure_any_followup(
        &self,
        group: SystemGroup,
        window: Window,
        scope: Scope,
    ) -> Vec<(FailureClass, ConditionalEstimate)> {
        FailureClass::FIGURE1
            .iter()
            .map(|&class| {
                (
                    class,
                    self.group_conditional(group, class, FailureClass::Any, window, scope),
                )
            })
            .collect()
    }
}

/// Merges per-system estimates with a stratified baseline: conditional
/// counts pool directly; each system's baseline is rescaled so its
/// weight in the pooled baseline equals its share of triggers.
pub(crate) fn merge_stratified(parts: &[ConditionalEstimate]) -> ConditionalEstimate {
    // Per-trigger baseline resolution; large enough that rounding is
    // negligible, small enough that u64 counts cannot overflow.
    const RESOLUTION: u64 = 1000;
    let mut merged = ConditionalEstimate::empty();
    for part in parts {
        let triggers = part.conditional.trials();
        if triggers == 0 || part.baseline.trials() == 0 {
            continue;
        }
        let scaled_total = triggers * RESOLUTION;
        let scaled_hits =
            ((part.baseline.estimate() * scaled_total as f64).round() as u64).min(scaled_total);
        merged = merged.merge(ConditionalEstimate {
            conditional: part.conditional,
            baseline: hpcfail_stats::proportion::Proportion::new(scaled_hits, scaled_total),
        });
    }
    merged
}

/// Core counting for one system.
fn conditional_for_system(
    system: &SystemTrace,
    trigger: FailureClass,
    target: FailureClass,
    window: Window,
    scope: Scope,
) -> ConditionalEstimate {
    // Memoized per (target, window) in the trace's timeline index:
    // fig1a alone asks for the identical (Any, Week) baseline 8 times
    // per system, and the sweep experiments multiply that further.
    let baseline = system.indexed_failure_baseline(target, window);
    let mut cond = WindowCounts::default();
    let duration = window.duration();

    let layout = system.layout();
    if scope == Scope::SameRack && layout.is_none() {
        return ConditionalEstimate::empty();
    }

    // SameSystem asks, per trigger, how many *other* nodes see a target
    // failure in the trigger's window — naively O(nodes) probes per
    // trigger. Both triggers and targets arrive time-sorted, so a
    // sliding window over target failures maintains the distinct-node
    // count in O(failures) total; counts (and therefore output bytes)
    // are identical to the per-node probes.
    if scope == Scope::SameSystem {
        let targets: Vec<(Timestamp, u32)> = system
            .failures()
            .iter()
            .filter(|f| target.matches(f))
            .map(|f| (f.time, f.node.raw()))
            .collect();
        let nodes = system.config().nodes as u64;
        let mut per_node = vec![0u32; system.config().nodes as usize];
        let mut distinct = 0u64;
        let (mut lo, mut hi) = (0usize, 0usize);
        for f in system.failures() {
            if !trigger.matches(f) || !system.window_observed(f.time, window) {
                continue;
            }
            let until = f.time + duration;
            // Grow the window to (f.time, until], shrink from the left.
            while hi < targets.len() && targets[hi].0 <= until {
                let n = targets[hi].1 as usize;
                per_node[n] += 1;
                if per_node[n] == 1 {
                    distinct += 1;
                }
                hi += 1;
            }
            while lo < hi && targets[lo].0 <= f.time {
                let n = targets[lo].1 as usize;
                per_node[n] -= 1;
                if per_node[n] == 0 {
                    distinct -= 1;
                }
                lo += 1;
            }
            cond.total += nodes - 1;
            let own = u64::from(per_node[f.node.index()] > 0);
            cond.hits += distinct - own;
        }
        return ConditionalEstimate::from_counts(cond, baseline);
    }

    for f in system.failures() {
        if !trigger.matches(f) || !system.window_observed(f.time, window) {
            continue;
        }
        let until = f.time + duration;
        match scope {
            Scope::SameNode => {
                cond.total += 1;
                if system.node_has_failure_in(f.node, target, f.time, until) {
                    cond.hits += 1;
                }
            }
            Scope::SameRack => {
                let Some(layout) = layout else { continue };
                for peer in layout.rack_neighbors(f.node) {
                    cond.total += 1;
                    if system.node_has_failure_in(peer, target, f.time, until) {
                        cond.hits += 1;
                    }
                }
            }
            Scope::SameSystem => unreachable!("handled by the sliding window above"),
        }
    }
    ConditionalEstimate::from_counts(cond, baseline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcfail_store::trace::SystemTraceBuilder;

    fn config(id: u16, nodes: u32, days: f64, group2: bool) -> SystemConfig {
        SystemConfig {
            id: SystemId::new(id),
            name: format!("t{id}"),
            nodes,
            procs_per_node: if group2 { 128 } else { 4 },
            hardware: if group2 {
                HardwareClass::Numa
            } else {
                HardwareClass::Smp4Way
            },
            start: Timestamp::EPOCH,
            end: Timestamp::from_days(days),
            has_layout: false,
            has_job_log: false,
            has_temperature: false,
        }
    }

    fn failure(sys: u16, node: u32, day: f64, root: RootCause) -> FailureRecord {
        FailureRecord::new(
            SystemId::new(sys),
            NodeId::new(node),
            Timestamp::from_days(day),
            root,
            SubCause::None,
        )
    }

    fn rack_layout(nodes: u32) -> MachineLayout {
        (0..nodes)
            .map(|n| {
                (
                    NodeId::new(n),
                    NodeLocation {
                        rack: RackId::new((n / 5) as u16),
                        position_in_rack: (n % 5 + 1) as u8,
                        room_row: 0,
                        room_col: 0,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn same_node_counting_by_hand() {
        // Node 0: failures at days 10, 12, 40. Window = week.
        // Triggers (all observed): 10 -> follow-up at 12 (hit);
        // 12 -> nothing until 19 (miss); 40 -> nothing (miss).
        let mut b = SystemTraceBuilder::new(config(1, 2, 100.0, false));
        for d in [10.0, 12.0, 40.0] {
            b.push_failure(failure(1, 0, d, RootCause::Hardware));
        }
        let mut trace = Trace::new();
        trace.insert_system(b.build());
        let a = CorrelationAnalysis::over(&trace);
        let e = a.system_conditional(
            SystemId::new(1),
            FailureClass::Any,
            FailureClass::Any,
            Window::Week,
            Scope::SameNode,
        );
        assert_eq!(e.conditional.trials(), 3);
        assert_eq!(e.conditional.successes(), 1);
        // Baseline: 2 nodes x 94 windows - failures on days 10, 12, 40.
        assert_eq!(e.baseline.trials(), 188);
    }

    #[test]
    fn trigger_near_end_excluded() {
        let mut b = SystemTraceBuilder::new(config(1, 1, 100.0, false));
        b.push_failure(failure(1, 0, 98.0, RootCause::Hardware)); // week not observed
        let mut trace = Trace::new();
        trace.insert_system(b.build());
        let a = CorrelationAnalysis::over(&trace);
        let e = a.system_conditional(
            SystemId::new(1),
            FailureClass::Any,
            FailureClass::Any,
            Window::Week,
            Scope::SameNode,
        );
        assert!(e.is_empty());
        // Day window is observed though.
        let e = a.system_conditional(
            SystemId::new(1),
            FailureClass::Any,
            FailureClass::Any,
            Window::Day,
            Scope::SameNode,
        );
        assert_eq!(e.conditional.trials(), 1);
    }

    #[test]
    fn rack_scope_counts_peers_only() {
        // 10 nodes in 2 racks of 5. Trigger on node 0 (rack 0); a
        // follow-up on node 3 (rack 0) the next day, and one on node 7
        // (rack 1) which must not count.
        let mut b = SystemTraceBuilder::new(config(1, 10, 100.0, false));
        b.layout(rack_layout(10));
        b.push_failure(failure(1, 0, 10.0, RootCause::Network));
        b.push_failure(failure(1, 3, 11.0, RootCause::Hardware));
        b.push_failure(failure(1, 7, 11.0, RootCause::Hardware));
        let mut trace = Trace::new();
        trace.insert_system(b.build());
        let a = CorrelationAnalysis::over(&trace);
        let e = a.system_conditional(
            SystemId::new(1),
            FailureClass::Root(RootCause::Network),
            FailureClass::Any,
            Window::Week,
            Scope::SameRack,
        );
        // 4 rack peers of node 0 = 4 trials, node 3 hit.
        assert_eq!(e.conditional.trials(), 4);
        assert_eq!(e.conditional.successes(), 1);
    }

    #[test]
    fn rack_scope_without_layout_is_empty() {
        let mut b = SystemTraceBuilder::new(config(1, 10, 100.0, false));
        b.push_failure(failure(1, 0, 10.0, RootCause::Network));
        let mut trace = Trace::new();
        trace.insert_system(b.build());
        let e = CorrelationAnalysis::over(&trace).system_conditional(
            SystemId::new(1),
            FailureClass::Any,
            FailureClass::Any,
            Window::Week,
            Scope::SameRack,
        );
        assert!(e.is_empty());
    }

    #[test]
    fn system_scope_excludes_trigger_node() {
        let mut b = SystemTraceBuilder::new(config(1, 3, 100.0, false));
        b.push_failure(failure(1, 0, 10.0, RootCause::Software));
        b.push_failure(failure(1, 0, 10.5, RootCause::Software)); // same node: not a system hit
        b.push_failure(failure(1, 2, 12.0, RootCause::Hardware));
        let mut trace = Trace::new();
        trace.insert_system(b.build());
        let e = CorrelationAnalysis::over(&trace).system_conditional(
            SystemId::new(1),
            FailureClass::Root(RootCause::Software),
            FailureClass::Any,
            Window::Week,
            Scope::SameSystem,
        );
        // Two software triggers x 2 other nodes = 4 trials; node 2's
        // day-12 failure is inside both windows = 2 hits.
        assert_eq!(e.conditional.trials(), 4);
        assert_eq!(e.conditional.successes(), 2);
    }

    #[test]
    fn group_pooling_merges_systems() {
        let mut trace = Trace::new();
        for id in [1u16, 2] {
            let mut b = SystemTraceBuilder::new(config(id, 1, 50.0, false));
            b.push_failure(failure(id, 0, 10.0, RootCause::Hardware));
            b.push_failure(failure(id, 0, 11.0, RootCause::Hardware));
            trace.insert_system(b.build());
        }
        let a = CorrelationAnalysis::over(&trace);
        let pooled = a.group_conditional(
            SystemGroup::Group1,
            FailureClass::Any,
            FailureClass::Any,
            Window::Week,
            Scope::SameNode,
        );
        assert_eq!(pooled.conditional.trials(), 4);
        assert_eq!(pooled.conditional.successes(), 2);
        // Group 2 has no systems here.
        let g2 = a.group_conditional(
            SystemGroup::Group2,
            FailureClass::Any,
            FailureClass::Any,
            Window::Week,
            Scope::SameNode,
        );
        assert!(g2.is_empty());
    }

    #[test]
    fn figure_any_followup_has_eight_bars() {
        let mut trace = Trace::new();
        let mut b = SystemTraceBuilder::new(config(1, 2, 50.0, false));
        b.push_failure(failure(1, 0, 10.0, RootCause::Hardware));
        trace.insert_system(b.build());
        let a = CorrelationAnalysis::over(&trace);
        let bars = a.figure_any_followup(SystemGroup::Group1, Window::Week, Scope::SameNode);
        assert_eq!(bars.len(), 8);
        assert_eq!(bars[1].0, FailureClass::Root(RootCause::Hardware));
    }
}
