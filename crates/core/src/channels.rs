//! Optional data channels and their availability in a trace.
//!
//! The paper's analyses draw on channels beyond the failure log itself
//! — job/usage records, node temperatures, neutron-monitor counts — and
//! real releases routinely lack one or more of them. Experiments
//! declare which channels they require; the runner checks the trace
//! with [`missing_channels`] and skips (rather than panics) when the
//! data simply is not there.

use hpcfail_store::trace::Trace;

/// A data channel an analysis may require beyond the failure log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Channel {
    /// Per-node temperature samples on at least one system.
    Temperature,
    /// Job/usage records on at least one system.
    JobLog,
    /// Fleet-wide neutron-monitor samples.
    Neutron,
}

impl Channel {
    /// Every channel.
    pub const ALL: [Channel; 3] = [Channel::Temperature, Channel::JobLog, Channel::Neutron];

    /// Human-readable name used in skip messages and counters.
    pub fn label(self) -> &'static str {
        match self {
            Channel::Temperature => "temperature",
            Channel::JobLog => "job-log",
            Channel::Neutron => "neutron",
        }
    }

    /// `true` if the trace carries any data on this channel.
    pub fn present_in(self, trace: &Trace) -> bool {
        match self {
            Channel::Temperature => trace.systems().any(|s| !s.temperatures().is_empty()),
            Channel::JobLog => trace.systems().any(|s| !s.jobs().is_empty()),
            Channel::Neutron => !trace.neutron_samples().is_empty(),
        }
    }
}

impl std::fmt::Display for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The subset of `required` channels the trace lacks, in declaration
/// order. Empty means the analysis can run.
pub fn missing_channels(trace: &Trace, required: &[Channel]) -> Vec<Channel> {
    required
        .iter()
        .copied()
        .filter(|c| !c.present_in(trace))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcfail_store::trace::SystemTraceBuilder;
    use hpcfail_types::prelude::*;

    fn empty_trace() -> Trace {
        let mut trace = Trace::new();
        let config = SystemConfig {
            id: SystemId::new(1),
            name: "t".into(),
            nodes: 2,
            procs_per_node: 2,
            hardware: HardwareClass::Smp4Way,
            start: Timestamp::EPOCH,
            end: Timestamp::from_days(10.0),
            has_layout: false,
            has_job_log: false,
            has_temperature: false,
        };
        trace.insert_system(SystemTraceBuilder::new(config).build());
        trace
    }

    #[test]
    fn empty_trace_lacks_all_channels() {
        let trace = empty_trace();
        assert_eq!(
            missing_channels(&trace, &Channel::ALL),
            Channel::ALL.to_vec()
        );
        assert!(missing_channels(&trace, &[]).is_empty());
    }

    #[test]
    fn neutron_channel_tracks_samples() {
        let mut trace = empty_trace();
        trace.set_neutron_samples(vec![NeutronSample {
            time: Timestamp::EPOCH,
            counts_per_minute: 100.0,
        }]);
        assert!(Channel::Neutron.present_in(&trace));
        assert_eq!(missing_channels(&trace, &[Channel::Neutron]), vec![]);
        assert_eq!(
            missing_channels(&trace, &Channel::ALL),
            vec![Channel::Temperature, Channel::JobLog]
        );
    }
}
