//! Section VIII: how does temperature affect failures?
//!
//! Two halves: (a) regressions of per-node outage counts on average /
//! maximum / variance of temperature — which the paper (and [El-Sayed
//! et al., SIGMETRICS 2012]) find *insignificant*; (b) the effect of
//! fan and chiller failures, whose brief extreme-temperature periods
//! sharply raise subsequent hardware failure rates (Figure 13).
//!
//! The conditionals in (b) route through [`CorrelationAnalysis`], whose
//! baselines come from the store's memoized timeline index
//! (`hpcfail_store::index`) — repeated (class, window) queries share one
//! build.

use crate::correlation::{CorrelationAnalysis, Scope};
use crate::estimate::ConditionalEstimate;
use hpcfail_stats::glm::{fit_negative_binomial, Family, GlmError, GlmFit, GlmModel};
use hpcfail_store::trace::Trace;
use hpcfail_types::prelude::*;

/// Which temperature aggregate a regression uses as its predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TempPredictor {
    /// The node's mean reported temperature.
    Average,
    /// The node's maximum reported temperature.
    Maximum,
    /// The variance of the node's reported temperatures.
    Variance,
}

impl TempPredictor {
    /// All predictors the paper tests.
    pub const ALL: [TempPredictor; 3] = [
        TempPredictor::Average,
        TempPredictor::Maximum,
        TempPredictor::Variance,
    ];

    /// Table-friendly name.
    pub const fn label(self) -> &'static str {
        match self {
            TempPredictor::Average => "avg_temp",
            TempPredictor::Maximum => "max_temp",
            TempPredictor::Variance => "temp_var",
        }
    }
}

impl std::fmt::Display for TempPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing a [`TempPredictor`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePredictorError(String);

impl std::fmt::Display for ParsePredictorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown temperature predictor {:?}, expected avg_temp, max_temp or temp_var",
            self.0
        )
    }
}

impl std::error::Error for ParsePredictorError {}

impl std::str::FromStr for TempPredictor {
    type Err = ParsePredictorError;

    /// Accepts the table labels (`avg_temp`, ...) with `-`/`_`/space
    /// treated interchangeably, plus `average`/`maximum`/`variance`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut key = s.to_ascii_lowercase();
        key.retain(|c| !matches!(c, '-' | '_' | ' '));
        match key.as_str() {
            "avgtemp" | "avg" | "average" => Ok(TempPredictor::Average),
            "maxtemp" | "max" | "maximum" => Ok(TempPredictor::Maximum),
            "tempvar" | "var" | "variance" => Ok(TempPredictor::Variance),
            _ => Err(ParsePredictorError(s.to_owned())),
        }
    }
}

/// The two temperature-excursion triggers of Figure 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TempTrigger {
    /// A node fan failure.
    Fan,
    /// A machine-room chiller failure.
    Chiller,
}

impl TempTrigger {
    /// Both triggers.
    pub const ALL: [TempTrigger; 2] = [TempTrigger::Fan, TempTrigger::Chiller];

    /// The failure class identifying the trigger in the log.
    pub fn class(self) -> FailureClass {
        match self {
            TempTrigger::Fan => FailureClass::Hw(HardwareComponent::Fan),
            TempTrigger::Chiller => FailureClass::Env(EnvironmentCause::Chiller),
        }
    }

    /// Figure label.
    pub const fn label(self) -> &'static str {
        match self {
            TempTrigger::Fan => "FanFail",
            TempTrigger::Chiller => "ChillerFail",
        }
    }
}

/// The components Figure 13 (right) reports — note MSC boards and
/// midplanes, which power problems did not affect.
pub const FIG13_COMPONENTS: [HardwareComponent; 7] = [
    HardwareComponent::PowerSupply,
    HardwareComponent::MemoryDimm,
    HardwareComponent::NodeBoard,
    HardwareComponent::Fan,
    HardwareComponent::Cpu,
    HardwareComponent::MscBoard,
    HardwareComponent::Midplane,
];

/// The Section VIII temperature analysis.
#[derive(Debug, Clone, Copy)]
pub struct TemperatureAnalysis<'a> {
    trace: &'a Trace,
    correlation: CorrelationAnalysis<'a>,
}

impl<'a> TemperatureAnalysis<'a> {
    /// Creates the analysis over `trace`.
    #[deprecated(note = "construct through `hpcfail_core::engine::Engine::temperature` instead")]
    pub fn new(trace: &'a Trace) -> Self {
        TemperatureAnalysis::over(trace)
    }

    /// Engine-internal constructor: the public entry point is
    /// [`crate::engine::Engine::temperature`].
    pub(crate) fn over(trace: &'a Trace) -> Self {
        TemperatureAnalysis {
            trace,
            correlation: CorrelationAnalysis::over(trace),
        }
    }

    /// Regresses per-node counts of `target` failures on one
    /// temperature aggregate, with the given family (the paper runs
    /// both Poisson and negative binomial).
    ///
    /// # Errors
    ///
    /// [`GlmError`] when the system lacks temperature data (reported as
    /// a dimension mismatch) or the fit fails.
    pub fn regression(
        &self,
        system: SystemId,
        predictor: TempPredictor,
        target: FailureClass,
        family: Family,
    ) -> Result<GlmFit, GlmError> {
        let (xs, ys) = self.regression_data(system, predictor, target)?;
        let mut model = GlmModel::new(family);
        model.term(predictor.label(), &xs);
        match family {
            Family::Poisson => model.fit(&ys),
            // A negative-binomial request estimates theta by ML.
            Family::NegativeBinomial { .. } => fit_negative_binomial(&model, &ys),
        }
    }

    fn regression_data(
        &self,
        system: SystemId,
        predictor: TempPredictor,
        target: FailureClass,
    ) -> Result<(Vec<f64>, Vec<f64>), GlmError> {
        let s = self
            .trace
            .system(system)
            .ok_or_else(|| GlmError::DimensionMismatch {
                what: format!("unknown system {system}"),
            })?;
        // Memoized in the trace's timeline index: each predictor/target
        // regression reads the same per-node aggregates.
        let aggregates = s.indexed_temperature();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for node in s.nodes() {
            let Some(agg) = aggregates.get(node.index()).copied().flatten() else {
                continue;
            };
            let x = match predictor {
                TempPredictor::Average => agg.avg,
                TempPredictor::Maximum => agg.max,
                TempPredictor::Variance => agg.variance,
            };
            xs.push(x);
            ys.push(s.node_failures(node).filter(|f| target.matches(f)).count() as f64);
        }
        if xs.is_empty() {
            return Err(GlmError::DimensionMismatch {
                what: format!("system {system} has no temperature samples"),
            });
        }
        Ok((xs, ys))
    }

    /// Figure 13 (left): hardware-failure probability in the window
    /// after a fan or chiller failure, fleet-pooled.
    pub fn figure13_left(&self) -> Vec<(TempTrigger, Window, ConditionalEstimate)> {
        let mut out = Vec::new();
        for window in Window::ALL {
            for trigger in TempTrigger::ALL {
                out.push((
                    trigger,
                    window,
                    self.correlation.fleet_conditional(
                        trigger.class(),
                        FailureClass::Root(RootCause::Hardware),
                        window,
                        Scope::SameNode,
                    ),
                ));
            }
        }
        out
    }

    /// Figure 13 (right): per-component failure probability in the
    /// month after a fan or chiller failure.
    pub fn figure13_right(&self) -> Vec<(TempTrigger, HardwareComponent, ConditionalEstimate)> {
        let mut out = Vec::new();
        for component in FIG13_COMPONENTS {
            for trigger in TempTrigger::ALL {
                out.push((
                    trigger,
                    component,
                    self.correlation.fleet_conditional(
                        trigger.class(),
                        FailureClass::Hw(component),
                        Window::Month,
                        Scope::SameNode,
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcfail_store::trace::SystemTraceBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn build(temp_effect: bool) -> Trace {
        let config = SystemConfig {
            id: SystemId::new(20),
            name: "t".into(),
            nodes: 40,
            procs_per_node: 4,
            hardware: HardwareClass::Smp4Way,
            start: Timestamp::EPOCH,
            end: Timestamp::from_days(400.0),
            has_layout: false,
            has_job_log: false,
            has_temperature: true,
        };
        let mut b = SystemTraceBuilder::new(config);
        let sys = SystemId::new(20);
        let mut rng = StdRng::seed_from_u64(17);
        for n in 0..40u32 {
            let base_temp = 24.0 + (n % 7) as f64; // varies across nodes
            for d in 0..40 {
                b.push_temperature(TemperatureSample {
                    system: sys,
                    node: NodeId::new(n),
                    time: Timestamp::from_days(d as f64 * 10.0),
                    celsius: base_temp + rng.gen_range(-1.0..1.0),
                });
            }
            // Failures: either unrelated to temperature, or strongly
            // increasing with it.
            let lambda = if temp_effect {
                (n % 7) as f64 * 1.5 + 0.2
            } else {
                2.0
            };
            let count = lambda.round() as u32;
            for k in 0..count {
                b.push_failure(FailureRecord::new(
                    sys,
                    NodeId::new(n),
                    Timestamp::from_days(5.0 + k as f64 * 37.0 + (n as f64) * 0.7),
                    RootCause::Hardware,
                    SubCause::Hardware(HardwareComponent::Cpu),
                ));
            }
        }
        let mut trace = Trace::new();
        trace.insert_system(b.build());
        trace
    }

    #[test]
    fn no_effect_when_failures_flat() {
        let trace = build(false);
        let a = TemperatureAnalysis::over(&trace);
        let fit = a
            .regression(
                SystemId::new(20),
                TempPredictor::Average,
                FailureClass::Root(RootCause::Hardware),
                Family::Poisson,
            )
            .unwrap();
        let coef = fit.coefficient("avg_temp").unwrap();
        assert!(!coef.significant_at(0.05), "p = {}", coef.p_value);
    }

    #[test]
    fn effect_detected_when_planted() {
        let trace = build(true);
        let a = TemperatureAnalysis::over(&trace);
        let fit = a
            .regression(
                SystemId::new(20),
                TempPredictor::Average,
                FailureClass::Root(RootCause::Hardware),
                Family::Poisson,
            )
            .unwrap();
        let coef = fit.coefficient("avg_temp").unwrap();
        assert!(coef.estimate > 0.0);
        assert!(coef.significant_at(0.01));
    }

    #[test]
    fn negative_binomial_regression_runs() {
        let trace = build(false);
        let a = TemperatureAnalysis::over(&trace);
        let fit = a
            .regression(
                SystemId::new(20),
                TempPredictor::Maximum,
                FailureClass::Root(RootCause::Hardware),
                Family::NegativeBinomial { theta: 1.0 },
            )
            .unwrap();
        assert!(matches!(fit.family, Family::NegativeBinomial { .. }));
    }

    #[test]
    fn regression_without_temperature_errors() {
        let trace = build(false);
        let a = TemperatureAnalysis::over(&trace);
        let err = a
            .regression(
                SystemId::new(99),
                TempPredictor::Average,
                FailureClass::Any,
                Family::Poisson,
            )
            .unwrap_err();
        assert!(matches!(err, GlmError::DimensionMismatch { .. }));
    }

    #[test]
    fn figure13_shapes() {
        let trace = build(false);
        let a = TemperatureAnalysis::over(&trace);
        assert_eq!(a.figure13_left().len(), 6); // 2 triggers x 3 windows
        assert_eq!(a.figure13_right().len(), 14); // 7 components x 2
    }

    #[test]
    fn fan_failure_triggers_counted() {
        let config = SystemConfig {
            id: SystemId::new(2),
            name: "t".into(),
            nodes: 2,
            procs_per_node: 4,
            hardware: HardwareClass::Smp4Way,
            start: Timestamp::EPOCH,
            end: Timestamp::from_days(100.0),
            has_layout: false,
            has_job_log: false,
            has_temperature: false,
        };
        let mut b = SystemTraceBuilder::new(config);
        b.push_failure(FailureRecord::new(
            SystemId::new(2),
            NodeId::new(0),
            Timestamp::from_days(10.0),
            RootCause::Hardware,
            SubCause::Hardware(HardwareComponent::Fan),
        ));
        b.push_failure(FailureRecord::new(
            SystemId::new(2),
            NodeId::new(0),
            Timestamp::from_days(12.0),
            RootCause::Hardware,
            SubCause::Hardware(HardwareComponent::MscBoard),
        ));
        let mut trace = Trace::new();
        trace.insert_system(b.build());
        let a = TemperatureAnalysis::over(&trace);
        let msc = a
            .figure13_right()
            .into_iter()
            .find(|(t, c, _)| *t == TempTrigger::Fan && *c == HardwareComponent::MscBoard)
            .unwrap()
            .2;
        assert_eq!(msc.conditional.successes(), 1);
        assert_eq!(msc.conditional.trials(), 1);
    }
}
