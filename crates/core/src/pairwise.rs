//! Section III-A.3 / III-B: does the type of a failure predict the type
//! of a follow-up failure?
//!
//! Computes the full pairwise matrix `p(x, y)` — the probability of a
//! type-Y failure in the window following a type-X failure — plus the
//! Figure 1(b)/2(right) summary comparing, for each type X, the
//! probability of an X failure after a same-type failure, after *any*
//! failure, and in a random window.
//!
//! The full matrix asks for the same per-(target, window) baseline once
//! per trigger type; those queries hit the store's memoized timeline
//! index (`hpcfail_store::index`) rather than rescanning the trace.

use crate::correlation::{CorrelationAnalysis, Scope};
use crate::estimate::ConditionalEstimate;
use hpcfail_types::prelude::*;

/// One row of the Figure 1(b) summary for a failure type X.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SameTypeSummary {
    /// The failure type X.
    pub class: FailureClass,
    /// P(X in window | previous failure of the same type X).
    pub after_same_type: ConditionalEstimate,
    /// P(X in window | previous failure of any type).
    pub after_any: ConditionalEstimate,
}

impl SameTypeSummary {
    /// Factor increase of the same-type conditional over the random
    /// baseline (the "700x" style annotations).
    pub fn same_type_factor(&self) -> Option<f64> {
        self.after_same_type.factor()
    }
}

/// The pairwise type-transition analysis.
#[derive(Debug, Clone, Copy)]
pub struct PairwiseAnalysis<'a> {
    correlation: CorrelationAnalysis<'a>,
}

impl<'a> PairwiseAnalysis<'a> {
    /// Creates the analysis over `trace`.
    #[deprecated(note = "construct through `hpcfail_core::engine::Engine::pairwise` instead")]
    pub fn new(trace: &'a hpcfail_store::trace::Trace) -> Self {
        PairwiseAnalysis::over(trace)
    }

    /// Engine-internal constructor: the public entry point is
    /// [`crate::engine::Engine::pairwise`].
    pub(crate) fn over(trace: &'a hpcfail_store::trace::Trace) -> Self {
        PairwiseAnalysis {
            correlation: CorrelationAnalysis::over(trace),
        }
    }

    /// The full matrix of `p(x, y)` estimates over the given classes.
    /// Entry `[i][j]` conditions on `classes[i]` and targets
    /// `classes[j]`.
    pub fn matrix(
        &self,
        group: SystemGroup,
        classes: &[FailureClass],
        window: Window,
        scope: Scope,
    ) -> Vec<Vec<ConditionalEstimate>> {
        classes
            .iter()
            .map(|&x| {
                classes
                    .iter()
                    .map(|&y| {
                        self.correlation
                            .group_conditional(group, x, y, window, scope)
                    })
                    .collect()
            })
            .collect()
    }

    /// The Figure 1(b)/2(right) summary for every class in
    /// [`FailureClass::FIGURE1`].
    pub fn same_type_summaries(
        &self,
        group: SystemGroup,
        window: Window,
        scope: Scope,
    ) -> Vec<SameTypeSummary> {
        FailureClass::FIGURE1
            .iter()
            .map(|&class| SameTypeSummary {
                class,
                after_same_type: self
                    .correlation
                    .group_conditional(group, class, class, window, scope),
                after_any: self.correlation.group_conditional(
                    group,
                    FailureClass::Any,
                    class,
                    window,
                    scope,
                ),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcfail_store::trace::{SystemTraceBuilder, Trace};

    fn trace_with(failures: &[(u32, f64, RootCause)]) -> Trace {
        let config = SystemConfig {
            id: SystemId::new(1),
            name: "t".into(),
            nodes: 4,
            procs_per_node: 4,
            hardware: HardwareClass::Smp4Way,
            start: Timestamp::EPOCH,
            end: Timestamp::from_days(200.0),
            has_layout: false,
            has_job_log: false,
            has_temperature: false,
        };
        let mut b = SystemTraceBuilder::new(config);
        for &(node, day, root) in failures {
            b.push_failure(FailureRecord::new(
                SystemId::new(1),
                NodeId::new(node),
                Timestamp::from_days(day),
                root,
                SubCause::None,
            ));
        }
        let mut trace = Trace::new();
        trace.insert_system(b.build());
        trace
    }

    #[test]
    fn same_type_transition_detected() {
        // Network failures always followed by network failures;
        // hardware failures isolated.
        let trace = trace_with(&[
            (0, 10.0, RootCause::Network),
            (0, 11.0, RootCause::Network),
            (0, 50.0, RootCause::Network),
            (0, 51.0, RootCause::Network),
            (1, 100.0, RootCause::Hardware),
            (2, 140.0, RootCause::Hardware),
        ]);
        let a = PairwiseAnalysis::over(&trace);
        let classes = [
            FailureClass::Root(RootCause::Network),
            FailureClass::Root(RootCause::Hardware),
        ];
        let m = a.matrix(SystemGroup::Group1, &classes, Window::Week, Scope::SameNode);
        // net -> net: triggers 10, 11, 50, 51; hits from 10 and 50.
        assert_eq!(m[0][0].conditional.trials(), 4);
        assert_eq!(m[0][0].conditional.successes(), 2);
        // net -> hw: no hits.
        assert_eq!(m[0][1].conditional.successes(), 0);
        // hw -> hw: isolated, no hits.
        assert_eq!(m[1][1].conditional.successes(), 0);
    }

    #[test]
    fn summaries_cover_figure1_classes() {
        let trace = trace_with(&[
            (0, 10.0, RootCause::Software),
            (0, 12.0, RootCause::Software),
        ]);
        let a = PairwiseAnalysis::over(&trace);
        let rows = a.same_type_summaries(SystemGroup::Group1, Window::Week, Scope::SameNode);
        assert_eq!(rows.len(), 8);
        let sw = rows
            .iter()
            .find(|r| r.class == FailureClass::Root(RootCause::Software))
            .unwrap();
        assert_eq!(sw.after_same_type.conditional.trials(), 2);
        assert_eq!(sw.after_same_type.conditional.successes(), 1);
        // after_any conditions on any failure (also 2 triggers here).
        assert_eq!(sw.after_any.conditional.trials(), 2);
    }

    #[test]
    fn same_type_factor_exceeds_any_factor_when_type_clustered() {
        // Two tight same-type bursts of different types: conditioning on
        // the same type must predict better than conditioning on any.
        let trace = trace_with(&[
            (0, 10.0, RootCause::Network),
            (0, 11.0, RootCause::Network),
            (1, 60.0, RootCause::Software),
            (1, 61.0, RootCause::Software),
            (2, 120.0, RootCause::Hardware),
            (3, 160.0, RootCause::HumanError),
        ]);
        let a = PairwiseAnalysis::over(&trace);
        let rows = a.same_type_summaries(SystemGroup::Group1, Window::Week, Scope::SameNode);
        let net = rows
            .iter()
            .find(|r| r.class == FailureClass::Root(RootCause::Network))
            .unwrap();
        assert!(net.after_same_type.conditional.estimate() > net.after_any.conditional.estimate());
        assert!(net.same_type_factor().unwrap() > 1.0);
    }
}
