//! Typed answers returned by [`crate::engine::Engine::run`].
//!
//! Each [`AnalysisResult`] variant mirrors one
//! [`crate::engine::AnalysisRequest`] variant. Results serialize to
//! JSON with [`AnalysisResult::to_json`]; the pretty form of that JSON
//! is exactly what `hpcfail-serve` puts on the wire, so a served
//! answer is byte-identical to a direct in-process call.

use crate::availability::AvailabilityReport;
use crate::checkpoint::CheckpointOutcome;
use crate::estimate::ConditionalEstimate;
use crate::interarrival::ArrivalProfile;
use crate::nodes::NodeVsRest;
use crate::pairwise::SameTypeSummary;
use crate::predict::AlarmEvaluation;
use crate::usage::UsageCorrelation;
use crate::users::UserStat;
use hpcfail_obs::json::Json;
use hpcfail_stats::glm::{Coefficient, Family, GlmFit};
use hpcfail_stats::htest::TestResult;
use hpcfail_stats::proportion::Proportion;
use hpcfail_types::prelude::*;

/// Trace metadata answered by `trace-summary`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Raw ids of the systems in the trace, ascending.
    pub systems: Vec<u16>,
    /// Total failure records across all systems.
    pub failures: u64,
    /// The engine's trace fingerprint, as 16 lowercase hex digits.
    pub fingerprint: String,
}

/// One root cause's share of a node set's failures.
#[derive(Debug, Clone, PartialEq)]
pub struct RootShare {
    /// The root cause.
    pub root: RootCause,
    /// Fraction of the pooled failures attributed to it.
    pub share: f64,
}

/// One environmental sub-cause's share of the fleet's environmental
/// failures.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvShare {
    /// The sub-cause.
    pub cause: EnvironmentCause,
    /// Failures attributed to it.
    pub count: u64,
    /// Its fraction of all environmental failures.
    pub share: f64,
}

/// The three Section V correlations of Figure 7.
#[derive(Debug, Clone, PartialEq)]
pub struct UsageSummary {
    /// Pearson correlation of job count with failures.
    pub jobs_pearson: UsageCorrelation,
    /// Pearson correlation of utilization with failures.
    pub util_pearson: UsageCorrelation,
    /// Spearman rank correlation of job count with failures.
    pub jobs_spearman: UsageCorrelation,
}

/// Section VI user statistics with the heterogeneity test.
#[derive(Debug, Clone, PartialEq)]
pub struct UserSummary {
    /// The requested users, heaviest first.
    pub stats: Vec<UserStat>,
    /// Chi-square test of "failure exposure is homogeneous across
    /// these users"; `None` with too few users.
    pub heterogeneity: Option<TestResult>,
}

/// A GLM fit without the per-observation fitted means (those are
/// data-sized and not wire material).
#[derive(Debug, Clone, PartialEq)]
pub struct GlmSummary {
    /// Family label: `"poisson"` or `"negative-binomial"`.
    pub family: String,
    /// The NB dispersion, when the family is negative binomial.
    pub theta: Option<f64>,
    /// Observations.
    pub n: usize,
    /// IRLS iterations.
    pub iterations: usize,
    /// Residual deviance.
    pub deviance: f64,
    /// Intercept-only deviance.
    pub null_deviance: f64,
    /// Maximized log-likelihood.
    pub log_likelihood: f64,
    /// Akaike information criterion.
    pub aic: f64,
    /// Coefficient table, intercept first.
    pub coefficients: Vec<Coefficient>,
}

impl GlmSummary {
    /// Summarizes a fit for the wire, dropping `fitted`.
    pub fn from_fit(fit: &GlmFit) -> Self {
        let (family, theta) = match fit.family {
            Family::Poisson => ("poisson".to_owned(), None),
            Family::NegativeBinomial { theta } => ("negative-binomial".to_owned(), Some(theta)),
        };
        GlmSummary {
            family,
            theta,
            n: fit.n,
            iterations: fit.iterations,
            deviance: fit.deviance,
            null_deviance: fit.null_deviance,
            log_likelihood: fit.log_likelihood,
            aic: fit.aic,
            coefficients: fit.coefficients.clone(),
        }
    }
}

/// The Section IX flux/failure association.
#[derive(Debug, Clone, PartialEq)]
pub struct CosmicSummary {
    /// Months with both flux and observation data.
    pub months: usize,
    /// Pearson correlation of monthly failure probability with flux.
    pub pearson: Option<f64>,
    /// Spearman rank correlation of the same series.
    pub spearman: Option<f64>,
}

/// One ranked distribution fit, with the distribution rendered as its
/// display string.
#[derive(Debug, Clone, PartialEq)]
pub struct FitSummary {
    /// e.g. `"weibull(shape=0.78, scale=12.3)"`.
    pub dist: String,
    /// Maximized log-likelihood.
    pub log_likelihood: f64,
    /// Akaike information criterion (lower is better).
    pub aic: f64,
    /// KS statistic against the sample.
    pub ks_statistic: f64,
    /// Asymptotic KS p-value.
    pub ks_p_value: f64,
}

/// An inter-arrival profile summarized for the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalSummary {
    /// The system's raw id.
    pub system: u16,
    /// Inter-arrival gaps analyzed.
    pub gaps: usize,
    /// Mean time between failures, hours.
    pub mtbf_hours: f64,
    /// Candidate fits ranked by AIC, best first.
    pub fits: Vec<FitSummary>,
    /// Autocorrelation of daily counts at lags 1..=7.
    pub daily_acf: Vec<f64>,
    /// Ljung-Box test of "no autocorrelation up to lag 7".
    pub ljung_box: TestResult,
    /// Whether the Ljung-Box test flags clustering at 5%.
    pub clustering: bool,
}

impl ArrivalSummary {
    /// Summarizes a profile for the wire.
    pub fn from_profile(profile: &ArrivalProfile) -> Self {
        ArrivalSummary {
            system: profile.system.raw(),
            gaps: profile.gaps,
            mtbf_hours: profile.mtbf_hours,
            fits: profile
                .fits
                .iter()
                .map(|f| FitSummary {
                    dist: f.dist.to_string(),
                    log_likelihood: f.log_likelihood,
                    aic: f.aic,
                    ks_statistic: f.ks_statistic,
                    ks_p_value: f.ks_p_value,
                })
                .collect(),
            daily_acf: profile.daily_acf.clone(),
            ljung_box: profile.ljung_box,
            clustering: profile.clustering_detected(),
        }
    }
}

/// The typed answer to one [`crate::engine::AnalysisRequest`].
///
/// Analyses that can legitimately fail on a given trace (regressions
/// on degenerate data, arrival profiles with too few gaps) embed the
/// error as a `Result<_, String>` instead of failing the whole
/// request: a served query then still returns 200 with the error in
/// the body, which keeps batch responses aligned with their requests.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisResult {
    /// Answer to `trace-summary`.
    TraceSummary(TraceSummary),
    /// Answer to `conditional`, `fleet-conditional` and
    /// `power-conditional` requests, and `maintenance-after-power`.
    Conditional(ConditionalEstimate),
    /// Answer to `same-type-summaries`.
    SameType(Vec<SameTypeSummary>),
    /// Answer to `node-failure-counts`.
    NodeFailureCounts(Vec<u64>),
    /// Answer to `equal-rates-test`; `None` when the system is unknown
    /// or has fewer than two nodes.
    Test(Option<TestResult>),
    /// Answer to `node-vs-rest`.
    NodeVsRest(NodeVsRest),
    /// Answer to `root-cause-shares`.
    RootCauseShares(Vec<RootShare>),
    /// Answer to `usage-correlations`.
    Usage(UsageSummary),
    /// Answer to `heaviest-users`.
    Users(UserSummary),
    /// Answer to `env-breakdown`.
    EnvBreakdown(Vec<EnvShare>),
    /// Answer to `temperature-regression` and `regression-study`.
    Glm(Result<GlmSummary, String>),
    /// Answer to `cosmic-correlation`.
    Cosmic(CosmicSummary),
    /// Answer to `arrival-profile`.
    Arrival(Result<ArrivalSummary, String>),
    /// Answer to `alarm-evaluation`.
    Alarm(AlarmEvaluation),
    /// Answer to `checkpoint-replay`.
    Checkpoint(CheckpointOutcome),
    /// Answer to `availability`; one report per qualifying system.
    Availability(Vec<AvailabilityReport>),
}

impl AnalysisResult {
    /// The wire discriminator emitted as the `"result"` field.
    pub fn kind(&self) -> &'static str {
        match self {
            AnalysisResult::TraceSummary(_) => "trace-summary",
            AnalysisResult::Conditional(_) => "conditional",
            AnalysisResult::SameType(_) => "same-type-summaries",
            AnalysisResult::NodeFailureCounts(_) => "node-failure-counts",
            AnalysisResult::Test(_) => "test",
            AnalysisResult::NodeVsRest(_) => "node-vs-rest",
            AnalysisResult::RootCauseShares(_) => "root-cause-shares",
            AnalysisResult::Usage(_) => "usage-correlations",
            AnalysisResult::Users(_) => "users",
            AnalysisResult::EnvBreakdown(_) => "env-breakdown",
            AnalysisResult::Glm(_) => "glm",
            AnalysisResult::Cosmic(_) => "cosmic-correlation",
            AnalysisResult::Arrival(_) => "arrival-profile",
            AnalysisResult::Alarm(_) => "alarm-evaluation",
            AnalysisResult::Checkpoint(_) => "checkpoint-replay",
            AnalysisResult::Availability(_) => "availability",
        }
    }

    /// The JSON wire form. Object keys serialize sorted and numbers
    /// deterministically, so equal results produce equal bytes.
    pub fn to_json(&self) -> Json {
        let body = match self {
            AnalysisResult::TraceSummary(s) => Json::obj([
                (
                    "systems",
                    Json::Arr(
                        s.systems
                            .iter()
                            .map(|&id| Json::Num(f64::from(id)))
                            .collect(),
                    ),
                ),
                ("failures", Json::Num(s.failures as f64)),
                ("fingerprint", Json::Str(s.fingerprint.clone())),
            ]),
            AnalysisResult::Conditional(est) => estimate_json(est),
            AnalysisResult::SameType(summaries) => Json::Arr(
                summaries
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("class", Json::Str(s.class.wire())),
                            ("after_same_type", estimate_json(&s.after_same_type)),
                            ("after_any", estimate_json(&s.after_any)),
                        ])
                    })
                    .collect(),
            ),
            AnalysisResult::NodeFailureCounts(counts) => {
                Json::Arr(counts.iter().map(|&c| Json::Num(c as f64)).collect())
            }
            AnalysisResult::Test(test) => option_json(test.as_ref().map(test_json)),
            AnalysisResult::NodeVsRest(nvr) => Json::obj([
                ("node", proportion_json(&nvr.node)),
                ("rest", proportion_json(&nvr.rest)),
            ]),
            AnalysisResult::RootCauseShares(shares) => Json::Arr(
                shares
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("root", Json::Str(s.root.label().to_owned())),
                            ("share", Json::Num(s.share)),
                        ])
                    })
                    .collect(),
            ),
            AnalysisResult::Usage(u) => Json::obj([
                ("jobs_pearson", usage_corr_json(&u.jobs_pearson)),
                ("util_pearson", usage_corr_json(&u.util_pearson)),
                ("jobs_spearman", usage_corr_json(&u.jobs_spearman)),
            ]),
            AnalysisResult::Users(u) => Json::obj([
                (
                    "stats",
                    Json::Arr(
                        u.stats
                            .iter()
                            .map(|s| {
                                Json::obj([
                                    ("user", Json::Num(f64::from(s.user.raw()))),
                                    ("processor_days", Json::Num(s.processor_days)),
                                    ("jobs", Json::Num(s.jobs as f64)),
                                    ("node_failures", Json::Num(s.node_failures as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "heterogeneity",
                    option_json(u.heterogeneity.as_ref().map(test_json)),
                ),
            ]),
            AnalysisResult::EnvBreakdown(shares) => Json::Arr(
                shares
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("cause", Json::Str(s.cause.label().to_owned())),
                            ("count", Json::Num(s.count as f64)),
                            ("share", Json::Num(s.share)),
                        ])
                    })
                    .collect(),
            ),
            AnalysisResult::Glm(fit) => match fit {
                Ok(summary) => Json::obj([("fit", glm_json(summary))]),
                Err(message) => Json::obj([("error", Json::Str(message.clone()))]),
            },
            AnalysisResult::Cosmic(c) => Json::obj([
                ("months", Json::Num(c.months as f64)),
                ("pearson", option_json(c.pearson.map(Json::Num))),
                ("spearman", option_json(c.spearman.map(Json::Num))),
            ]),
            AnalysisResult::Arrival(profile) => match profile {
                Ok(summary) => Json::obj([("profile", arrival_json(summary))]),
                Err(message) => Json::obj([("error", Json::Str(message.clone()))]),
            },
            AnalysisResult::Alarm(eval) => Json::obj([
                ("alarms", Json::Num(eval.alarms as f64)),
                ("correct_alarms", Json::Num(eval.correct_alarms as f64)),
                ("caught_failures", Json::Num(eval.caught_failures as f64)),
                ("total_failures", Json::Num(eval.total_failures as f64)),
                ("flagged_seconds", Json::Num(eval.flagged_seconds as f64)),
                ("total_seconds", Json::Num(eval.total_seconds as f64)),
                ("precision", Json::Num(eval.precision())),
                ("recall", Json::Num(eval.recall())),
                ("flagged_fraction", Json::Num(eval.flagged_fraction())),
            ]),
            AnalysisResult::Checkpoint(outcome) => Json::obj([
                ("checkpoint_hours", Json::Num(outcome.checkpoint_hours)),
                ("lost_hours", Json::Num(outcome.lost_hours)),
                ("restart_hours", Json::Num(outcome.restart_hours)),
                ("total_hours", Json::Num(outcome.total_hours)),
                ("failures", Json::Num(outcome.failures as f64)),
                ("goodput", Json::Num(outcome.goodput())),
            ]),
            AnalysisResult::Availability(reports) => {
                Json::Arr(reports.iter().map(availability_json).collect())
            }
        };
        Json::obj([
            ("result", Json::Str(self.kind().to_owned())),
            ("data", body),
        ])
    }
}

fn option_json(value: Option<Json>) -> Json {
    value.unwrap_or(Json::Null)
}

fn proportion_json(p: &Proportion) -> Json {
    Json::obj([
        ("estimate", Json::Num(p.estimate())),
        ("successes", Json::Num(p.successes() as f64)),
        ("trials", Json::Num(p.trials() as f64)),
    ])
}

fn estimate_json(est: &ConditionalEstimate) -> Json {
    let test = if est.is_empty() {
        Json::Null
    } else {
        let t = est.test();
        Json::obj([("z", Json::Num(t.z)), ("p_value", Json::Num(t.p_value))])
    };
    Json::obj([
        ("conditional", proportion_json(&est.conditional)),
        ("baseline", proportion_json(&est.baseline)),
        ("factor", option_json(est.factor().map(Json::Num))),
        ("test", test),
    ])
}

fn test_json(t: &TestResult) -> Json {
    Json::obj([
        ("statistic", Json::Num(t.statistic)),
        ("df", Json::Num(t.df)),
        ("p_value", Json::Num(t.p_value)),
    ])
}

fn usage_corr_json(c: &UsageCorrelation) -> Json {
    Json::obj([
        ("all_nodes", option_json(c.all_nodes.map(Json::Num))),
        ("without_node0", option_json(c.without_node0.map(Json::Num))),
    ])
}

fn coefficient_json(c: &Coefficient) -> Json {
    Json::obj([
        ("name", Json::Str(c.name.clone())),
        ("estimate", Json::Num(c.estimate)),
        ("std_error", Json::Num(c.std_error)),
        ("z_value", Json::Num(c.z_value)),
        ("p_value", Json::Num(c.p_value)),
    ])
}

fn glm_json(s: &GlmSummary) -> Json {
    Json::obj([
        ("family", Json::Str(s.family.clone())),
        ("theta", option_json(s.theta.map(Json::Num))),
        ("n", Json::Num(s.n as f64)),
        ("iterations", Json::Num(s.iterations as f64)),
        ("deviance", Json::Num(s.deviance)),
        ("null_deviance", Json::Num(s.null_deviance)),
        ("log_likelihood", Json::Num(s.log_likelihood)),
        ("aic", Json::Num(s.aic)),
        (
            "coefficients",
            Json::Arr(s.coefficients.iter().map(coefficient_json).collect()),
        ),
    ])
}

fn arrival_json(s: &ArrivalSummary) -> Json {
    Json::obj([
        ("system", Json::Num(f64::from(s.system))),
        ("gaps", Json::Num(s.gaps as f64)),
        ("mtbf_hours", Json::Num(s.mtbf_hours)),
        (
            "fits",
            Json::Arr(
                s.fits
                    .iter()
                    .map(|f| {
                        Json::obj([
                            ("dist", Json::Str(f.dist.clone())),
                            ("log_likelihood", Json::Num(f.log_likelihood)),
                            ("aic", Json::Num(f.aic)),
                            ("ks_statistic", Json::Num(f.ks_statistic)),
                            ("ks_p_value", Json::Num(f.ks_p_value)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "daily_acf",
            Json::Arr(s.daily_acf.iter().map(|&v| Json::Num(v)).collect()),
        ),
        ("ljung_box", test_json(&s.ljung_box)),
        ("clustering", Json::Bool(s.clustering)),
    ])
}

fn availability_json(r: &AvailabilityReport) -> Json {
    Json::obj([
        ("system", Json::Num(f64::from(r.system.raw()))),
        (
            "failures_with_downtime",
            Json::Num(r.failures_with_downtime as f64),
        ),
        ("failures", Json::Num(r.failures as f64)),
        ("node_mtbf_hours", Json::Num(r.node_mtbf_hours)),
        ("mttr_hours", Json::Num(r.mttr_hours)),
        ("availability", Json::Num(r.availability)),
        (
            "downtime_by_root",
            Json::Arr(
                r.downtime_by_root
                    .iter()
                    .map(|(root, hours)| {
                        Json::obj([
                            ("root", Json::Str(root.label().to_owned())),
                            ("hours", Json::Num(*hours)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}
