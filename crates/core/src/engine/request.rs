//! The serializable request taxonomy of the analysis engine.
//!
//! An [`AnalysisRequest`] names one question from the paper (or one of
//! the repo's extensions) together with its parameters. Requests
//! round-trip through the JSON wire form ([`AnalysisRequest::to_json`]
//! / [`AnalysisRequest::from_json`]) used by `hpcfail-serve`, and the
//! canonical wire form doubles as the result-cache key.

use crate::checkpoint::CheckpointPolicy;
use crate::correlation::Scope;
use crate::power::PowerProblem;
use crate::predict::AlarmRule;
use crate::regression_study::StudyFamily;
use crate::temperature::TempPredictor;
use hpcfail_obs::json::Json;
use hpcfail_types::prelude::*;
use std::collections::BTreeMap;
use std::fmt;

/// Default `k` for [`AnalysisRequest::HeaviestUsers`]: the paper
/// examines the 50 heaviest users (Figure 8).
pub const DEFAULT_HEAVIEST_USERS: usize = 50;

/// One typed analysis question, covering every paper section
/// (III–X) plus the repo's extensions.
///
/// Construct directly, or parse the JSON wire form with
/// [`AnalysisRequest::parse`]. Every request is answered by
/// [`crate::engine::Engine::run`].
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisRequest {
    /// Trace metadata: systems, failure count, fingerprint.
    TraceSummary,
    /// Section III: P(`target` within `window` after `trigger`) at
    /// `scope`, pooled over the systems of `group`.
    Conditional {
        /// Which hardware group to pool over.
        group: SystemGroup,
        /// The trigger failure class.
        trigger: FailureClass,
        /// The follow-up failure class.
        target: FailureClass,
        /// How long after the trigger to look.
        window: Window,
        /// Where to look for the follow-up.
        scope: Scope,
    },
    /// Section III pooled over *every* system with a stratified
    /// baseline (the Section VII/VIII "LANL nodes" pooling).
    FleetConditional {
        /// The trigger failure class.
        trigger: FailureClass,
        /// The follow-up failure class.
        target: FailureClass,
        /// How long after the trigger to look.
        window: Window,
        /// Where to look for the follow-up.
        scope: Scope,
    },
    /// Section III-A.3 (Figure 1(b)/2(right)): same-type vs any-type
    /// follow-up probability for each Figure 1 class.
    SameTypeSummaries {
        /// Which hardware group to pool over.
        group: SystemGroup,
        /// How long after the trigger to look.
        window: Window,
        /// Where to look for the follow-up.
        scope: Scope,
    },
    /// Section IV (Figure 4): failures per node id.
    NodeFailureCounts {
        /// The system to count over.
        system: SystemId,
    },
    /// Section IV: chi-square test of "all nodes fail at equal rates",
    /// optionally excluding node 0 as the paper does.
    EqualRatesTest {
        /// The system to test.
        system: SystemId,
        /// Which failures to count.
        class: FailureClass,
        /// Repeat the paper's robustness check without node 0.
        exclude_node0: bool,
    },
    /// Section IV (Figure 6): per-class failure probability of one
    /// node against the pooled rest of the system.
    NodeVsRest {
        /// The system.
        system: SystemId,
        /// The singled-out node.
        node: NodeId,
        /// Which failures to count.
        class: FailureClass,
        /// The window length of the probability.
        window: Window,
    },
    /// Section IV (Figure 5): relative root-cause breakdown over a set
    /// of nodes.
    RootCauseShares {
        /// The system.
        system: SystemId,
        /// The nodes whose failures are pooled.
        nodes: Vec<NodeId>,
    },
    /// Section V (Figure 7): correlation of per-node failure counts
    /// with utilization and job counts.
    UsageCorrelations {
        /// The system (needs a job log).
        system: SystemId,
    },
    /// Section VI (Figure 8): the `k` heaviest users with their
    /// failure exposure, plus the ANOVA heterogeneity test.
    HeaviestUsers {
        /// The system (needs a job log).
        system: SystemId,
        /// How many users, ranked by processor-days.
        k: usize,
    },
    /// Section VII (Figure 9): breakdown of environmental failures by
    /// sub-cause, fleet-wide.
    EnvBreakdown,
    /// Section VII (Figures 10/11 left): P(`target` after a power
    /// `problem`), fleet-pooled on the same node.
    PowerConditional {
        /// The power-problem trigger.
        problem: PowerProblem,
        /// The follow-up failure class.
        target: FailureClass,
        /// How long after the trigger to look.
        window: Window,
    },
    /// Section VII-A.2: unscheduled hardware maintenance after a power
    /// problem.
    MaintenanceAfterPower {
        /// The power-problem trigger.
        problem: PowerProblem,
    },
    /// Section VIII-A: regression of per-node `target` counts on one
    /// temperature aggregate.
    TemperatureRegression {
        /// The system (needs temperature data).
        system: SystemId,
        /// Which temperature aggregate predicts.
        predictor: TempPredictor,
        /// The response failure class.
        target: FailureClass,
        /// Poisson or negative-binomial response.
        family: StudyFamily,
    },
    /// Section IX (Figure 14): correlation of monthly failure
    /// probability with neutron flux.
    CosmicCorrelation {
        /// The system.
        system: SystemId,
        /// Which failures to count.
        class: FailureClass,
    },
    /// Section X (Tables II/III): the joint regression of outages on
    /// usage, layout and temperature features.
    RegressionStudy {
        /// The system (needs job log and temperature data).
        system: SystemId,
        /// Poisson (Table II) or negative-binomial (Table III).
        family: StudyFamily,
        /// Drop node 0 before fitting.
        exclude_node0: bool,
    },
    /// Extension: inter-arrival distribution fits and autocorrelation.
    ArrivalProfile {
        /// The system.
        system: SystemId,
        /// Which failures to profile.
        class: FailureClass,
    },
    /// Extension: precision/recall of the alarm rule "flag a node for
    /// `window` after a `trigger` failure".
    AlarmEvaluation {
        /// Which hardware group to evaluate over.
        group: SystemGroup,
        /// What raises the alarm.
        trigger: FailureClass,
        /// How long a node stays flagged.
        window: Window,
    },
    /// Extension: replay a checkpoint policy over the failure timeline
    /// with the typical cost model.
    CheckpointReplay {
        /// Which hardware group to replay over.
        group: SystemGroup,
        /// The policy to replay.
        policy: CheckpointPolicy,
    },
    /// Extension: MTBF / MTTR / availability, for one system or all.
    Availability {
        /// Restrict to one system; `None` reports every system.
        system: Option<SystemId>,
    },
}

/// Every request kind's wire discriminator, in declaration order.
/// `GET /schema` on the server lists these.
pub const REQUEST_KINDS: [&str; 20] = [
    "trace-summary",
    "conditional",
    "fleet-conditional",
    "same-type-summaries",
    "node-failure-counts",
    "equal-rates-test",
    "node-vs-rest",
    "root-cause-shares",
    "usage-correlations",
    "heaviest-users",
    "env-breakdown",
    "power-conditional",
    "maintenance-after-power",
    "temperature-regression",
    "cosmic-correlation",
    "regression-study",
    "arrival-profile",
    "alarm-evaluation",
    "checkpoint-replay",
    "availability",
];

/// A malformed analysis request (unknown kind, missing or mistyped
/// field, unparseable label). The message is safe to return verbatim
/// to a client as a 4xx body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    message: String,
}

impl RequestError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        RequestError {
            message: message.into(),
        }
    }

    /// What went wrong.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid analysis request: {}", self.message)
    }
}

impl std::error::Error for RequestError {}

impl AnalysisRequest {
    /// The wire discriminator (one of [`REQUEST_KINDS`]).
    pub fn kind(&self) -> &'static str {
        match self {
            AnalysisRequest::TraceSummary => "trace-summary",
            AnalysisRequest::Conditional { .. } => "conditional",
            AnalysisRequest::FleetConditional { .. } => "fleet-conditional",
            AnalysisRequest::SameTypeSummaries { .. } => "same-type-summaries",
            AnalysisRequest::NodeFailureCounts { .. } => "node-failure-counts",
            AnalysisRequest::EqualRatesTest { .. } => "equal-rates-test",
            AnalysisRequest::NodeVsRest { .. } => "node-vs-rest",
            AnalysisRequest::RootCauseShares { .. } => "root-cause-shares",
            AnalysisRequest::UsageCorrelations { .. } => "usage-correlations",
            AnalysisRequest::HeaviestUsers { .. } => "heaviest-users",
            AnalysisRequest::EnvBreakdown => "env-breakdown",
            AnalysisRequest::PowerConditional { .. } => "power-conditional",
            AnalysisRequest::MaintenanceAfterPower { .. } => "maintenance-after-power",
            AnalysisRequest::TemperatureRegression { .. } => "temperature-regression",
            AnalysisRequest::CosmicCorrelation { .. } => "cosmic-correlation",
            AnalysisRequest::RegressionStudy { .. } => "regression-study",
            AnalysisRequest::ArrivalProfile { .. } => "arrival-profile",
            AnalysisRequest::AlarmEvaluation { .. } => "alarm-evaluation",
            AnalysisRequest::CheckpointReplay { .. } => "checkpoint-replay",
            AnalysisRequest::Availability { .. } => "availability",
        }
    }

    /// The canonical JSON wire form. Round-trips through
    /// [`AnalysisRequest::from_json`]; because every field is emitted
    /// (including defaults) and object keys serialize sorted, the
    /// pretty-printed form is a stable cache key.
    pub fn to_json(&self) -> Json {
        let kind = Json::Str(self.kind().to_owned());
        match self {
            AnalysisRequest::TraceSummary | AnalysisRequest::EnvBreakdown => {
                Json::obj([("analysis", kind)])
            }
            AnalysisRequest::Conditional {
                group,
                trigger,
                target,
                window,
                scope,
            } => Json::obj([
                ("analysis", kind),
                ("group", Json::Str(group.wire().to_owned())),
                ("trigger", Json::Str(trigger.wire())),
                ("target", Json::Str(target.wire())),
                ("window", Json::Str(window.label().to_owned())),
                ("scope", Json::Str(scope.label().to_owned())),
            ]),
            AnalysisRequest::FleetConditional {
                trigger,
                target,
                window,
                scope,
            } => Json::obj([
                ("analysis", kind),
                ("trigger", Json::Str(trigger.wire())),
                ("target", Json::Str(target.wire())),
                ("window", Json::Str(window.label().to_owned())),
                ("scope", Json::Str(scope.label().to_owned())),
            ]),
            AnalysisRequest::SameTypeSummaries {
                group,
                window,
                scope,
            } => Json::obj([
                ("analysis", kind),
                ("group", Json::Str(group.wire().to_owned())),
                ("window", Json::Str(window.label().to_owned())),
                ("scope", Json::Str(scope.label().to_owned())),
            ]),
            AnalysisRequest::NodeFailureCounts { system } => Json::obj([
                ("analysis", kind),
                ("system", Json::Num(f64::from(system.raw()))),
            ]),
            AnalysisRequest::EqualRatesTest {
                system,
                class,
                exclude_node0,
            } => Json::obj([
                ("analysis", kind),
                ("system", Json::Num(f64::from(system.raw()))),
                ("class", Json::Str(class.wire())),
                ("exclude_node0", Json::Bool(*exclude_node0)),
            ]),
            AnalysisRequest::NodeVsRest {
                system,
                node,
                class,
                window,
            } => Json::obj([
                ("analysis", kind),
                ("system", Json::Num(f64::from(system.raw()))),
                ("node", Json::Num(f64::from(node.raw()))),
                ("class", Json::Str(class.wire())),
                ("window", Json::Str(window.label().to_owned())),
            ]),
            AnalysisRequest::RootCauseShares { system, nodes } => Json::obj([
                ("analysis", kind),
                ("system", Json::Num(f64::from(system.raw()))),
                (
                    "nodes",
                    Json::Arr(
                        nodes
                            .iter()
                            .map(|n| Json::Num(f64::from(n.raw())))
                            .collect(),
                    ),
                ),
            ]),
            AnalysisRequest::UsageCorrelations { system } => Json::obj([
                ("analysis", kind),
                ("system", Json::Num(f64::from(system.raw()))),
            ]),
            AnalysisRequest::HeaviestUsers { system, k } => Json::obj([
                ("analysis", kind),
                ("system", Json::Num(f64::from(system.raw()))),
                ("k", Json::Num(*k as f64)),
            ]),
            AnalysisRequest::PowerConditional {
                problem,
                target,
                window,
            } => Json::obj([
                ("analysis", kind),
                ("problem", Json::Str(problem.label().to_owned())),
                ("target", Json::Str(target.wire())),
                ("window", Json::Str(window.label().to_owned())),
            ]),
            AnalysisRequest::MaintenanceAfterPower { problem } => Json::obj([
                ("analysis", kind),
                ("problem", Json::Str(problem.label().to_owned())),
            ]),
            AnalysisRequest::TemperatureRegression {
                system,
                predictor,
                target,
                family,
            } => Json::obj([
                ("analysis", kind),
                ("system", Json::Num(f64::from(system.raw()))),
                ("predictor", Json::Str(predictor.label().to_owned())),
                ("target", Json::Str(target.wire())),
                ("family", Json::Str(family.label().to_owned())),
            ]),
            AnalysisRequest::CosmicCorrelation { system, class } => Json::obj([
                ("analysis", kind),
                ("system", Json::Num(f64::from(system.raw()))),
                ("class", Json::Str(class.wire())),
            ]),
            AnalysisRequest::RegressionStudy {
                system,
                family,
                exclude_node0,
            } => Json::obj([
                ("analysis", kind),
                ("system", Json::Num(f64::from(system.raw()))),
                ("family", Json::Str(family.label().to_owned())),
                ("exclude_node0", Json::Bool(*exclude_node0)),
            ]),
            AnalysisRequest::ArrivalProfile { system, class } => Json::obj([
                ("analysis", kind),
                ("system", Json::Num(f64::from(system.raw()))),
                ("class", Json::Str(class.wire())),
            ]),
            AnalysisRequest::AlarmEvaluation {
                group,
                trigger,
                window,
            } => Json::obj([
                ("analysis", kind),
                ("group", Json::Str(group.wire().to_owned())),
                ("trigger", Json::Str(trigger.wire())),
                ("window", Json::Str(window.label().to_owned())),
            ]),
            AnalysisRequest::CheckpointReplay { group, policy } => Json::obj([
                ("analysis", kind),
                ("group", Json::Str(group.wire().to_owned())),
                ("policy", policy_to_json(policy)),
            ]),
            AnalysisRequest::Availability { system } => Json::obj([
                ("analysis", kind),
                (
                    "system",
                    match system {
                        Some(id) => Json::Num(f64::from(id.raw())),
                        None => Json::Null,
                    },
                ),
            ]),
        }
    }

    /// Parses the JSON wire form.
    ///
    /// # Errors
    ///
    /// [`RequestError`] naming the offending field when the object is
    /// missing `analysis`, names an unknown kind, or any parameter is
    /// missing, mistyped or unparseable.
    pub fn from_json(json: &Json) -> Result<Self, RequestError> {
        let o = as_obj(json)?;
        let kind = str_field(o, "analysis")?;
        match kind {
            "trace-summary" => Ok(AnalysisRequest::TraceSummary),
            "conditional" => Ok(AnalysisRequest::Conditional {
                group: parse_field(o, "group")?,
                trigger: parse_field(o, "trigger")?,
                target: parse_field(o, "target")?,
                window: parse_field(o, "window")?,
                scope: parse_field(o, "scope")?,
            }),
            "fleet-conditional" => Ok(AnalysisRequest::FleetConditional {
                trigger: parse_field(o, "trigger")?,
                target: parse_field(o, "target")?,
                window: parse_field(o, "window")?,
                scope: parse_field(o, "scope")?,
            }),
            "same-type-summaries" => Ok(AnalysisRequest::SameTypeSummaries {
                group: parse_field(o, "group")?,
                window: parse_field(o, "window")?,
                scope: parse_field(o, "scope")?,
            }),
            "node-failure-counts" => Ok(AnalysisRequest::NodeFailureCounts {
                system: system_field(o)?,
            }),
            "equal-rates-test" => Ok(AnalysisRequest::EqualRatesTest {
                system: system_field(o)?,
                class: parse_field(o, "class")?,
                exclude_node0: bool_field(o, "exclude_node0")?,
            }),
            "node-vs-rest" => Ok(AnalysisRequest::NodeVsRest {
                system: system_field(o)?,
                node: NodeId::new(int_field(o, "node")? as u32),
                class: parse_field(o, "class")?,
                window: parse_field(o, "window")?,
            }),
            "root-cause-shares" => {
                let nodes = match o.get("nodes") {
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(|v| {
                            v.as_u64()
                                .map(|n| NodeId::new(n as u32))
                                .ok_or_else(|| RequestError::new("nodes entries must be integers"))
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    Some(_) => return Err(RequestError::new("field nodes must be an array")),
                    None => return Err(RequestError::new("missing field nodes")),
                };
                Ok(AnalysisRequest::RootCauseShares {
                    system: system_field(o)?,
                    nodes,
                })
            }
            "usage-correlations" => Ok(AnalysisRequest::UsageCorrelations {
                system: system_field(o)?,
            }),
            "heaviest-users" => Ok(AnalysisRequest::HeaviestUsers {
                system: system_field(o)?,
                k: match o.get("k") {
                    None | Some(Json::Null) => DEFAULT_HEAVIEST_USERS,
                    Some(v) => v.as_u64().ok_or_else(|| {
                        RequestError::new("field k must be a non-negative integer")
                    })? as usize,
                },
            }),
            "env-breakdown" => Ok(AnalysisRequest::EnvBreakdown),
            "power-conditional" => Ok(AnalysisRequest::PowerConditional {
                problem: parse_field(o, "problem")?,
                target: parse_field(o, "target")?,
                window: parse_field(o, "window")?,
            }),
            "maintenance-after-power" => Ok(AnalysisRequest::MaintenanceAfterPower {
                problem: parse_field(o, "problem")?,
            }),
            "temperature-regression" => Ok(AnalysisRequest::TemperatureRegression {
                system: system_field(o)?,
                predictor: parse_field(o, "predictor")?,
                target: parse_field(o, "target")?,
                family: match o.get("family") {
                    None | Some(Json::Null) => StudyFamily::Poisson,
                    Some(_) => parse_field(o, "family")?,
                },
            }),
            "cosmic-correlation" => Ok(AnalysisRequest::CosmicCorrelation {
                system: system_field(o)?,
                class: parse_field(o, "class")?,
            }),
            "regression-study" => Ok(AnalysisRequest::RegressionStudy {
                system: system_field(o)?,
                family: parse_field(o, "family")?,
                exclude_node0: bool_field(o, "exclude_node0")?,
            }),
            "arrival-profile" => Ok(AnalysisRequest::ArrivalProfile {
                system: system_field(o)?,
                class: parse_field(o, "class")?,
            }),
            "alarm-evaluation" => Ok(AnalysisRequest::AlarmEvaluation {
                group: parse_field(o, "group")?,
                trigger: parse_field(o, "trigger")?,
                window: parse_field(o, "window")?,
            }),
            "checkpoint-replay" => Ok(AnalysisRequest::CheckpointReplay {
                group: parse_field(o, "group")?,
                policy: policy_from_json(
                    o.get("policy")
                        .ok_or_else(|| RequestError::new("missing field policy"))?,
                )?,
            }),
            "availability" => Ok(AnalysisRequest::Availability {
                system: match o.get("system") {
                    None | Some(Json::Null) => None,
                    Some(_) => Some(system_field(o)?),
                },
            }),
            other => Err(RequestError::new(format!(
                "unknown analysis kind {other:?}; valid kinds: {}",
                REQUEST_KINDS.join(", ")
            ))),
        }
    }

    /// Parses a request from JSON text.
    ///
    /// # Errors
    ///
    /// [`RequestError`] on malformed JSON or on any problem
    /// [`AnalysisRequest::from_json`] reports.
    pub fn parse(text: &str) -> Result<Self, RequestError> {
        let json = hpcfail_obs::json::parse(text)
            .map_err(|e| RequestError::new(format!("malformed JSON: {e}")))?;
        AnalysisRequest::from_json(&json)
    }

    /// The canonical serialized form: pretty-printed JSON of
    /// [`AnalysisRequest::to_json`]. Identical requests always produce
    /// identical bytes, which is what the serve layer caches on.
    pub fn canonical(&self) -> String {
        self.to_json().pretty()
    }
}

fn policy_to_json(policy: &CheckpointPolicy) -> Json {
    match policy {
        CheckpointPolicy::Uniform { interval_hours } => Json::obj([
            ("kind", Json::Str("uniform".to_owned())),
            ("interval_hours", Json::Num(*interval_hours)),
        ]),
        CheckpointPolicy::Adaptive {
            base_hours,
            flagged_hours,
            rule,
        } => Json::obj([
            ("kind", Json::Str("adaptive".to_owned())),
            ("base_hours", Json::Num(*base_hours)),
            ("flagged_hours", Json::Num(*flagged_hours)),
            ("trigger", Json::Str(rule.trigger.wire())),
            ("window", Json::Str(rule.window.label().to_owned())),
        ]),
    }
}

fn policy_from_json(json: &Json) -> Result<CheckpointPolicy, RequestError> {
    let o = as_obj(json)?;
    match str_field(o, "kind")? {
        "uniform" => Ok(CheckpointPolicy::Uniform {
            interval_hours: f64_field(o, "interval_hours")?,
        }),
        "adaptive" => Ok(CheckpointPolicy::Adaptive {
            base_hours: f64_field(o, "base_hours")?,
            flagged_hours: f64_field(o, "flagged_hours")?,
            rule: AlarmRule {
                trigger: parse_field(o, "trigger")?,
                window: parse_field(o, "window")?,
            },
        }),
        other => Err(RequestError::new(format!(
            "unknown checkpoint policy kind {other:?}, expected uniform or adaptive"
        ))),
    }
}

fn as_obj(json: &Json) -> Result<&BTreeMap<String, Json>, RequestError> {
    match json {
        Json::Obj(map) => Ok(map),
        _ => Err(RequestError::new("request must be a JSON object")),
    }
}

fn str_field<'a>(o: &'a BTreeMap<String, Json>, key: &str) -> Result<&'a str, RequestError> {
    match o.get(key) {
        Some(Json::Str(s)) => Ok(s),
        Some(_) => Err(RequestError::new(format!("field {key} must be a string"))),
        None => Err(RequestError::new(format!("missing field {key}"))),
    }
}

fn int_field(o: &BTreeMap<String, Json>, key: &str) -> Result<u64, RequestError> {
    match o.get(key) {
        Some(v) => v.as_u64().ok_or_else(|| {
            RequestError::new(format!("field {key} must be a non-negative integer"))
        }),
        None => Err(RequestError::new(format!("missing field {key}"))),
    }
}

fn f64_field(o: &BTreeMap<String, Json>, key: &str) -> Result<f64, RequestError> {
    match o.get(key) {
        Some(v) => v
            .as_f64()
            .ok_or_else(|| RequestError::new(format!("field {key} must be a number"))),
        None => Err(RequestError::new(format!("missing field {key}"))),
    }
}

/// Absent fields default to `false`; present fields must be booleans.
fn bool_field(o: &BTreeMap<String, Json>, key: &str) -> Result<bool, RequestError> {
    match o.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        Some(Json::Null) | None => Ok(false),
        Some(_) => Err(RequestError::new(format!("field {key} must be a boolean"))),
    }
}

fn system_field(o: &BTreeMap<String, Json>) -> Result<SystemId, RequestError> {
    Ok(SystemId::new(int_field(o, "system")? as u16))
}

/// Parses a string field through the target type's `FromStr`.
fn parse_field<T>(o: &BTreeMap<String, Json>, key: &str) -> Result<T, RequestError>
where
    T: std::str::FromStr,
    T::Err: fmt::Display,
{
    str_field(o, key)?
        .parse()
        .map_err(|e| RequestError::new(format!("field {key}: {e}")))
}
