//! The unified analysis engine: one typed entry point for every
//! analysis in the crate.
//!
//! An [`Engine`] owns a shared, immutable [`Trace`] plus a structural
//! fingerprint of it. Analyses are reached two ways:
//!
//! * **Views** — [`Engine::correlation`], [`Engine::power`], … return
//!   the familiar per-section analysis values, borrowing the engine's
//!   trace. These replace the now-deprecated per-analysis `new`
//!   constructors.
//! * **Requests** — [`Engine::run`] answers a serializable
//!   [`AnalysisRequest`] with an [`AnalysisResult`]. This is the wire
//!   API of `hpcfail-serve` and the programmatic API of the `repro`
//!   harness; both produce byte-identical JSON for equal requests.
//!
//! The engine is [`Clone`] (the trace sits behind an [`Arc`]) and all
//! of its methods take `&self`, so one engine can serve concurrent
//! queries from many threads.
//!
//! ```
//! use hpcfail_core::engine::{AnalysisRequest, Engine};
//! use hpcfail_store::trace::Trace;
//!
//! let engine = Engine::new(Trace::new());
//! let result = engine.run(&AnalysisRequest::TraceSummary);
//! assert!(result.to_json().pretty().contains("fingerprint"));
//! ```

mod request;
mod result;

pub use request::{AnalysisRequest, RequestError, DEFAULT_HEAVIEST_USERS, REQUEST_KINDS};
pub use result::{
    AnalysisResult, ArrivalSummary, CosmicSummary, EnvShare, FitSummary, GlmSummary, RootShare,
    TraceSummary, UsageSummary, UserSummary,
};

use crate::availability::AvailabilityAnalysis;
use crate::checkpoint::CheckpointSimulator;
use crate::correlation::CorrelationAnalysis;
use crate::cosmic::CosmicAnalysis;
use crate::interarrival::ArrivalAnalysis;
use crate::nodes::NodeAnalysis;
use crate::pairwise::PairwiseAnalysis;
use crate::power::PowerAnalysis;
use crate::predict::AlarmRule;
use crate::regression_study::{RegressionStudy, StudyFamily};
use crate::temperature::TemperatureAnalysis;
use crate::usage::UsageAnalysis;
use crate::users::UserAnalysis;
use hpcfail_stats::glm::Family;
use hpcfail_store::trace::Trace;
use hpcfail_types::prelude::*;
use std::sync::Arc;

/// The unified entry point to every analysis.
///
/// See the [module docs](self) for the two access styles. Cloning is
/// cheap: clones share the trace and fingerprint.
#[derive(Debug, Clone)]
pub struct Engine {
    trace: Arc<Trace>,
    fingerprint: u64,
}

impl Engine {
    /// Builds an engine over a trace, fingerprinting it once.
    pub fn new(trace: Trace) -> Self {
        Engine::from_arc(Arc::new(trace))
    }

    /// Builds an engine over an already-shared trace.
    pub fn from_arc(trace: Arc<Trace>) -> Self {
        let fingerprint = fingerprint_trace(&trace);
        Engine { trace, fingerprint }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// A shareable handle to the underlying trace.
    pub fn shared_trace(&self) -> Arc<Trace> {
        Arc::clone(&self.trace)
    }

    /// FNV-1a hash of the trace's structure: every record of every
    /// system in deterministic order. Two engines over equal traces
    /// have equal fingerprints, which is what lets a result cache be
    /// keyed on (fingerprint, request).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The fingerprint as 16 lowercase hex digits.
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint)
    }

    /// Section III: the correlation analysis.
    pub fn correlation(&self) -> CorrelationAnalysis<'_> {
        CorrelationAnalysis::over(&self.trace)
    }

    /// Section III-A: pairwise class-to-class correlation.
    pub fn pairwise(&self) -> PairwiseAnalysis<'_> {
        PairwiseAnalysis::over(&self.trace)
    }

    /// Section IV: spatial distribution across nodes.
    pub fn nodes(&self) -> NodeAnalysis<'_> {
        NodeAnalysis::over(&self.trace)
    }

    /// Section V: workload intensity and failures.
    pub fn usage(&self) -> UsageAnalysis<'_> {
        UsageAnalysis::over(&self.trace)
    }

    /// Section VI: users and failures.
    pub fn users(&self) -> UserAnalysis<'_> {
        UserAnalysis::over(&self.trace)
    }

    /// Section VII: power problems and their after-effects.
    pub fn power(&self) -> PowerAnalysis<'_> {
        PowerAnalysis::over(&self.trace)
    }

    /// Section VIII: temperature and failures.
    pub fn temperature(&self) -> TemperatureAnalysis<'_> {
        TemperatureAnalysis::over(&self.trace)
    }

    /// Section IX: cosmic-ray flux and failures.
    pub fn cosmic(&self) -> CosmicAnalysis<'_> {
        CosmicAnalysis::over(&self.trace)
    }

    /// Section X: the joint regression study.
    pub fn regression(&self) -> RegressionStudy<'_> {
        RegressionStudy::over(&self.trace)
    }

    /// Extension: inter-arrival distribution fitting.
    pub fn arrivals(&self) -> ArrivalAnalysis<'_> {
        ArrivalAnalysis::over(&self.trace)
    }

    /// Extension: availability accounting.
    pub fn availability(&self) -> AvailabilityAnalysis<'_> {
        AvailabilityAnalysis::over(&self.trace)
    }

    /// Answers one typed request.
    ///
    /// Never panics on well-formed requests: analyses that cannot run
    /// on this trace (unknown system, degenerate data) answer with
    /// empty/`None`/`Err` payloads inside the result, mirroring the
    /// underlying per-analysis APIs.
    pub fn run(&self, request: &AnalysisRequest) -> AnalysisResult {
        let span = hpcfail_obs::span(&format!("engine.run.{}", request.kind()));
        span.attr("kind", request.kind());
        let _span = span;
        hpcfail_obs::counter("engine.requests").inc();
        match request {
            AnalysisRequest::TraceSummary => AnalysisResult::TraceSummary(TraceSummary {
                systems: self.trace.systems().map(|s| s.config().id.raw()).collect(),
                failures: self.trace.total_failures() as u64,
                fingerprint: self.fingerprint_hex(),
            }),
            AnalysisRequest::Conditional {
                group,
                trigger,
                target,
                window,
                scope,
            } => AnalysisResult::Conditional(
                self.correlation()
                    .group_conditional(*group, *trigger, *target, *window, *scope),
            ),
            AnalysisRequest::FleetConditional {
                trigger,
                target,
                window,
                scope,
            } => AnalysisResult::Conditional(
                self.correlation()
                    .fleet_conditional(*trigger, *target, *window, *scope),
            ),
            AnalysisRequest::SameTypeSummaries {
                group,
                window,
                scope,
            } => AnalysisResult::SameType(
                self.pairwise().same_type_summaries(*group, *window, *scope),
            ),
            AnalysisRequest::NodeFailureCounts { system } => {
                AnalysisResult::NodeFailureCounts(self.nodes().failure_counts(*system))
            }
            AnalysisRequest::EqualRatesTest {
                system,
                class,
                exclude_node0,
            } => {
                let exclude: &[NodeId] = if *exclude_node0 {
                    &[NodeId::new(0)]
                } else {
                    &[]
                };
                AnalysisResult::Test(self.nodes().equal_rates_test(*system, *class, exclude))
            }
            AnalysisRequest::NodeVsRest {
                system,
                node,
                class,
                window,
            } => AnalysisResult::NodeVsRest(
                self.nodes().node_vs_rest(*system, *node, *class, *window),
            ),
            AnalysisRequest::RootCauseShares { system, nodes } => AnalysisResult::RootCauseShares(
                self.nodes()
                    .root_cause_shares(*system, nodes)
                    .into_iter()
                    .map(|(root, share)| RootShare { root, share })
                    .collect(),
            ),
            AnalysisRequest::UsageCorrelations { system } => {
                let usage = self.usage();
                AnalysisResult::Usage(UsageSummary {
                    jobs_pearson: usage.jobs_failures_pearson(*system),
                    util_pearson: usage.util_failures_pearson(*system),
                    jobs_spearman: usage.jobs_failures_spearman(*system),
                })
            }
            AnalysisRequest::HeaviestUsers { system, k } => {
                let users = self.users();
                let stats = users.heaviest_users(*system, *k);
                let heterogeneity = users.heterogeneity_test(&stats);
                AnalysisResult::Users(UserSummary {
                    stats,
                    heterogeneity,
                })
            }
            AnalysisRequest::EnvBreakdown => {
                let power = self.power();
                let counts = power.env_breakdown();
                let shares = power.env_shares();
                AnalysisResult::EnvBreakdown(
                    counts
                        .into_iter()
                        .map(|(cause, count)| EnvShare {
                            cause,
                            count,
                            share: shares.get(&cause).copied().unwrap_or(0.0),
                        })
                        .collect(),
                )
            }
            AnalysisRequest::PowerConditional {
                problem,
                target,
                window,
            } => AnalysisResult::Conditional(
                self.power().conditional_after(*problem, *target, *window),
            ),
            AnalysisRequest::MaintenanceAfterPower { problem } => {
                AnalysisResult::Conditional(self.power().maintenance_after(*problem))
            }
            AnalysisRequest::TemperatureRegression {
                system,
                predictor,
                target,
                family,
            } => {
                // The NB theta seed is re-estimated by the fitter, so
                // any positive value maps StudyFamily onto Family.
                let family = match family {
                    StudyFamily::Poisson => Family::Poisson,
                    StudyFamily::NegativeBinomial => Family::NegativeBinomial { theta: 1.0 },
                };
                AnalysisResult::Glm(
                    self.temperature()
                        .regression(*system, *predictor, *target, family)
                        .map(|fit| GlmSummary::from_fit(&fit))
                        .map_err(|e| e.to_string()),
                )
            }
            AnalysisRequest::CosmicCorrelation { system, class } => {
                let cosmic = self.cosmic();
                AnalysisResult::Cosmic(CosmicSummary {
                    months: cosmic.monthly_series(*system, *class).len(),
                    pearson: cosmic.flux_correlation(*system, *class),
                    spearman: cosmic.flux_rank_correlation(*system, *class),
                })
            }
            AnalysisRequest::RegressionStudy {
                system,
                family,
                exclude_node0,
            } => AnalysisResult::Glm(
                self.regression()
                    .fit(*system, *family, *exclude_node0)
                    .map(|fit| GlmSummary::from_fit(&fit))
                    .map_err(|e| e.to_string()),
            ),
            AnalysisRequest::ArrivalProfile { system, class } => AnalysisResult::Arrival(
                self.arrivals()
                    .profile(*system, *class)
                    .map(|p| ArrivalSummary::from_profile(&p))
                    .map_err(|e| e.to_string()),
            ),
            AnalysisRequest::AlarmEvaluation {
                group,
                trigger,
                window,
            } => {
                let rule = AlarmRule {
                    trigger: *trigger,
                    window: *window,
                };
                AnalysisResult::Alarm(rule.evaluate_group(&self.trace, *group))
            }
            AnalysisRequest::CheckpointReplay { group, policy } => AnalysisResult::Checkpoint(
                CheckpointSimulator::typical().replay_group(&self.trace, *group, *policy),
            ),
            AnalysisRequest::Availability { system } => {
                AnalysisResult::Availability(match system {
                    Some(id) => self.availability().report(*id).into_iter().collect(),
                    None => self.availability().all_reports(),
                })
            }
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a over the trace's structural content.
struct Fnv(u64);

impl Fnv {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.write(&v.to_bits().to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.write(s.as_bytes());
    }
}

fn fingerprint_trace(trace: &Trace) -> u64 {
    let mut h = Fnv(FNV_OFFSET);
    h.u64(trace.len() as u64);
    for system in trace.systems() {
        let config = system.config();
        h.u64(u64::from(config.id.raw()));
        h.str(&config.name);
        h.u64(u64::from(config.nodes));
        h.u64(u64::from(config.procs_per_node));
        h.u64(match config.hardware {
            HardwareClass::Smp4Way => 0,
            HardwareClass::Numa => 1,
        });
        h.i64(config.start.as_seconds());
        h.i64(config.end.as_seconds());
        h.u64(u64::from(config.has_layout));
        h.u64(u64::from(config.has_job_log));
        h.u64(u64::from(config.has_temperature));

        h.u64(system.failures().len() as u64);
        for f in system.failures() {
            h.u64(u64::from(f.node.raw()));
            h.i64(f.time.as_seconds());
            h.str(f.root_cause.label());
            match f.sub_cause {
                SubCause::None => h.u64(0),
                SubCause::Hardware(c) => {
                    h.u64(1);
                    h.str(c.label());
                }
                SubCause::Software(c) => {
                    h.u64(2);
                    h.str(c.label());
                }
                SubCause::Environment(c) => {
                    h.u64(3);
                    h.str(c.label());
                }
            }
            h.i64(f.downtime.map_or(-1, Duration::as_seconds));
        }

        h.u64(system.jobs().len() as u64);
        for j in system.jobs() {
            h.u64(u64::from(j.user.raw()));
            h.i64(j.dispatch.as_seconds());
            h.i64(j.end.as_seconds());
            h.u64(u64::from(j.procs));
        }

        h.u64(system.temperatures().len() as u64);
        for t in system.temperatures() {
            h.u64(u64::from(t.node.raw()));
            h.i64(t.time.as_seconds());
            h.f64(t.celsius);
        }

        h.u64(system.maintenance().len() as u64);
        for m in system.maintenance() {
            h.u64(u64::from(m.node.raw()));
            h.i64(m.time.as_seconds());
            h.u64(u64::from(m.hardware_related));
            h.u64(u64::from(m.scheduled));
        }
    }
    h.u64(trace.neutron_samples().len() as u64);
    for s in trace.neutron_samples() {
        h.i64(s.time.as_seconds());
        h.f64(s.counts_per_minute);
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_trace() -> Trace {
        hpcfail_synth::FleetSpec::demo().generate(42).into_store()
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = Engine::new(demo_trace());
        let b = Engine::new(demo_trace());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint_hex().len(), 16);

        let other = Engine::new(hpcfail_synth::FleetSpec::demo().generate(43).into_store());
        assert_ne!(a.fingerprint(), other.fingerprint());

        let empty = Engine::new(Trace::new());
        assert_ne!(a.fingerprint(), empty.fingerprint());
    }

    #[test]
    fn clones_share_the_trace() {
        let engine = Engine::new(demo_trace());
        let clone = engine.clone();
        assert!(std::ptr::eq(engine.trace(), clone.trace()));
        assert_eq!(engine.fingerprint(), clone.fingerprint());
    }

    #[test]
    fn every_request_kind_round_trips_and_runs() {
        let engine = Engine::new(demo_trace());
        for request in sample_requests() {
            let wire = request.canonical();
            let back = AnalysisRequest::parse(&wire).expect("wire form parses back");
            assert_eq!(back, request, "round trip for {}", request.kind());
            let result = engine.run(&request);
            // Serialization must be deterministic.
            assert_eq!(
                result.to_json().pretty(),
                engine.run(&request).to_json().pretty(),
                "deterministic result for {}",
                request.kind()
            );
        }
    }

    #[test]
    fn kinds_table_matches_requests() {
        let mut kinds: Vec<&str> = sample_requests()
            .iter()
            .map(AnalysisRequest::kind)
            .collect();
        kinds.dedup();
        assert_eq!(kinds, REQUEST_KINDS.to_vec());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(AnalysisRequest::parse("not json").is_err());
        assert!(AnalysisRequest::parse("[]").is_err());
        assert!(AnalysisRequest::parse(r#"{"analysis": "no-such-kind"}"#).is_err());
        assert!(AnalysisRequest::parse(r#"{"analysis": "conditional"}"#).is_err());
        assert!(AnalysisRequest::parse(
            r#"{"analysis": "equal-rates-test", "system": 2, "class": "bogus"}"#
        )
        .is_err());
        let err = AnalysisRequest::parse(r#"{"analysis": "node-vs-rest", "system": "x"}"#)
            .expect_err("mistyped system");
        assert!(err.to_string().contains("system"));
    }

    /// One request per kind, in [`REQUEST_KINDS`] order.
    pub(super) fn sample_requests() -> Vec<AnalysisRequest> {
        use crate::checkpoint::CheckpointPolicy;
        use crate::correlation::Scope;
        use crate::power::PowerProblem;
        use crate::temperature::TempPredictor;
        vec![
            AnalysisRequest::TraceSummary,
            AnalysisRequest::Conditional {
                group: SystemGroup::Group1,
                trigger: FailureClass::Any,
                target: FailureClass::Any,
                window: Window::Day,
                scope: Scope::SameNode,
            },
            AnalysisRequest::FleetConditional {
                trigger: FailureClass::Root(RootCause::Hardware),
                target: FailureClass::Root(RootCause::Software),
                window: Window::Week,
                scope: Scope::SameSystem,
            },
            AnalysisRequest::SameTypeSummaries {
                group: SystemGroup::Group2,
                window: Window::Day,
                scope: Scope::SameNode,
            },
            AnalysisRequest::NodeFailureCounts {
                system: SystemId::new(2),
            },
            AnalysisRequest::EqualRatesTest {
                system: SystemId::new(2),
                class: FailureClass::Any,
                exclude_node0: true,
            },
            AnalysisRequest::NodeVsRest {
                system: SystemId::new(2),
                node: NodeId::new(0),
                class: FailureClass::Any,
                window: Window::Month,
            },
            AnalysisRequest::RootCauseShares {
                system: SystemId::new(2),
                nodes: vec![NodeId::new(0), NodeId::new(1)],
            },
            AnalysisRequest::UsageCorrelations {
                system: SystemId::new(2),
            },
            AnalysisRequest::HeaviestUsers {
                system: SystemId::new(2),
                k: 5,
            },
            AnalysisRequest::EnvBreakdown,
            AnalysisRequest::PowerConditional {
                problem: PowerProblem::Outage,
                target: FailureClass::Any,
                window: Window::Day,
            },
            AnalysisRequest::MaintenanceAfterPower {
                problem: PowerProblem::Spike,
            },
            AnalysisRequest::TemperatureRegression {
                system: SystemId::new(2),
                predictor: TempPredictor::Average,
                target: FailureClass::Any,
                family: StudyFamily::Poisson,
            },
            AnalysisRequest::CosmicCorrelation {
                system: SystemId::new(2),
                class: FailureClass::Any,
            },
            AnalysisRequest::RegressionStudy {
                system: SystemId::new(2),
                family: StudyFamily::Poisson,
                exclude_node0: false,
            },
            AnalysisRequest::ArrivalProfile {
                system: SystemId::new(2),
                class: FailureClass::Any,
            },
            AnalysisRequest::AlarmEvaluation {
                group: SystemGroup::Group1,
                trigger: FailureClass::Any,
                window: Window::Day,
            },
            AnalysisRequest::CheckpointReplay {
                group: SystemGroup::Group1,
                policy: CheckpointPolicy::Uniform {
                    interval_hours: 6.0,
                },
            },
            AnalysisRequest::Availability { system: None },
        ]
    }
}
