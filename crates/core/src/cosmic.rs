//! Section IX: external factors — cosmic radiation.
//!
//! Bins node outages by calendar month, pairs each month's failure
//! probability with the month's average neutron counts-per-minute, and
//! asks whether higher-flux months see more DRAM or CPU failures.
//! The paper finds DRAM flat (outages are hard errors the ECC can't
//! hide) and CPU slightly positive.

use hpcfail_stats::corr::{pearson, spearman};
use hpcfail_store::trace::Trace;
use hpcfail_types::prelude::*;
use std::collections::BTreeMap;

/// One month of one system: average flux and failure probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonthlyFluxPoint {
    /// 30-day month index since the trace epoch.
    pub month: i64,
    /// Average neutron counts per minute that month.
    pub counts_per_minute: f64,
    /// Fraction of the system's nodes with at least one matching
    /// failure that month.
    pub probability: f64,
}

/// The Section IX cosmic-ray analysis.
#[derive(Debug, Clone, Copy)]
pub struct CosmicAnalysis<'a> {
    trace: &'a Trace,
}

impl<'a> CosmicAnalysis<'a> {
    /// Creates the analysis over `trace`.
    #[deprecated(note = "construct through `hpcfail_core::engine::Engine::cosmic` instead")]
    pub fn new(trace: &'a Trace) -> Self {
        CosmicAnalysis::over(trace)
    }

    /// Engine-internal constructor: the public entry point is
    /// [`crate::engine::Engine::cosmic`].
    pub(crate) fn over(trace: &'a Trace) -> Self {
        CosmicAnalysis { trace }
    }

    /// Monthly average neutron counts per minute, by month index.
    pub fn monthly_flux(&self) -> BTreeMap<i64, f64> {
        let mut sums: BTreeMap<i64, (f64, u64)> = BTreeMap::new();
        for s in self.trace.neutron_samples() {
            let e = sums.entry(s.time.month_index()).or_insert((0.0, 0));
            e.0 += s.counts_per_minute;
            e.1 += 1;
        }
        sums.into_iter()
            .map(|(m, (sum, n))| (m, sum / n as f64))
            .collect()
    }

    /// The Figure 14 series for one system and failure class: for
    /// every fully observed month, `(flux, P(node has >=1 failure))`.
    pub fn monthly_series(&self, system: SystemId, class: FailureClass) -> Vec<MonthlyFluxPoint> {
        let Some(s) = self.trace.system(system) else {
            return Vec::new();
        };
        let flux = self.monthly_flux();
        let nodes = s.config().nodes as f64;
        if nodes == 0.0 {
            return Vec::new();
        }
        let first_month = s.config().start.month_index();
        let last_month = s.config().end.month_index(); // exclusive if partial
                                                       // Nodes with >=1 matching failure per month.
        let mut failing: BTreeMap<i64, std::collections::BTreeSet<NodeId>> = BTreeMap::new();
        for f in s.failures() {
            if class.matches(f) {
                failing
                    .entry(f.time.month_index())
                    .or_default()
                    .insert(f.node);
            }
        }
        (first_month..last_month)
            .filter_map(|month| {
                let counts = *flux.get(&month)?;
                let k = failing.get(&month).map_or(0, |set| set.len());
                Some(MonthlyFluxPoint {
                    month,
                    counts_per_minute: counts,
                    probability: k as f64 / nodes,
                })
            })
            .collect()
    }

    /// Pearson correlation between monthly flux and failure
    /// probability; `None` when degenerate.
    pub fn flux_correlation(&self, system: SystemId, class: FailureClass) -> Option<f64> {
        let series = self.monthly_series(system, class);
        let xs: Vec<f64> = series.iter().map(|p| p.counts_per_minute).collect();
        let ys: Vec<f64> = series.iter().map(|p| p.probability).collect();
        pearson(&xs, &ys)
    }

    /// Spearman rank correlation (robust variant).
    pub fn flux_rank_correlation(&self, system: SystemId, class: FailureClass) -> Option<f64> {
        let series = self.monthly_series(system, class);
        let xs: Vec<f64> = series.iter().map(|p| p.counts_per_minute).collect();
        let ys: Vec<f64> = series.iter().map(|p| p.probability).collect();
        spearman(&xs, &ys)
    }

    /// The Figure 14 rendering aid: months grouped into `bins` equal-
    /// width flux bins, each yielding `(mean flux, mean probability)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn binned_series(
        &self,
        system: SystemId,
        class: FailureClass,
        bins: usize,
    ) -> Vec<(f64, f64)> {
        assert!(bins > 0, "need at least one bin");
        let series = self.monthly_series(system, class);
        if series.is_empty() {
            return Vec::new();
        }
        let min = series
            .iter()
            .map(|p| p.counts_per_minute)
            .fold(f64::INFINITY, f64::min);
        let max = series
            .iter()
            .map(|p| p.counts_per_minute)
            .fold(f64::NEG_INFINITY, f64::max);
        let width = ((max - min) / bins as f64).max(1e-9);
        let mut acc = vec![(0.0f64, 0.0f64, 0u64); bins];
        for p in &series {
            let b = (((p.counts_per_minute - min) / width) as usize).min(bins - 1);
            acc[b].0 += p.counts_per_minute;
            acc[b].1 += p.probability;
            acc[b].2 += 1;
        }
        acc.into_iter()
            .filter(|&(_, _, n)| n > 0)
            .map(|(fx, pr, n)| (fx / n as f64, pr / n as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcfail_store::trace::SystemTraceBuilder;

    /// 10 nodes, 300 days; flux alternates low/high per month; CPU
    /// failures only in high-flux months, DRAM failures uniform.
    fn build() -> Trace {
        let config = SystemConfig {
            id: SystemId::new(18),
            name: "t".into(),
            nodes: 10,
            procs_per_node: 4,
            hardware: HardwareClass::Smp4Way,
            start: Timestamp::EPOCH,
            end: Timestamp::from_days(300.0),
            has_layout: false,
            has_job_log: false,
            has_temperature: false,
        };
        let mut b = SystemTraceBuilder::new(config);
        let sys = SystemId::new(18);
        for month in 0..10i64 {
            let high = month % 2 == 1;
            let day0 = month as f64 * 30.0;
            if high {
                for k in 0..3u32 {
                    b.push_failure(FailureRecord::new(
                        sys,
                        NodeId::new(k),
                        Timestamp::from_days(day0 + 5.0 + k as f64),
                        RootCause::Hardware,
                        SubCause::Hardware(HardwareComponent::Cpu),
                    ));
                }
            }
            // One DRAM failure every month regardless.
            b.push_failure(FailureRecord::new(
                sys,
                NodeId::new(5),
                Timestamp::from_days(day0 + 10.0),
                RootCause::Hardware,
                SubCause::Hardware(HardwareComponent::MemoryDimm),
            ));
        }
        let mut trace = Trace::new();
        trace.insert_system(b.build());
        let samples: Vec<NeutronSample> = (0..300)
            .map(|d| {
                let month = d / 30;
                let counts = if month % 2 == 1 { 4500.0 } else { 3600.0 };
                NeutronSample {
                    time: Timestamp::from_days(d as f64),
                    counts_per_minute: counts,
                }
            })
            .collect();
        trace.set_neutron_samples(samples);
        trace
    }

    #[test]
    fn monthly_flux_aggregation() {
        let trace = build();
        let a = CosmicAnalysis::over(&trace);
        let flux = a.monthly_flux();
        assert_eq!(flux.len(), 10);
        assert_eq!(flux[&0], 3600.0);
        assert_eq!(flux[&1], 4500.0);
    }

    #[test]
    fn series_pairs_months_with_flux() {
        let trace = build();
        let a = CosmicAnalysis::over(&trace);
        let cpu = a.monthly_series(SystemId::new(18), FailureClass::Hw(HardwareComponent::Cpu));
        assert_eq!(cpu.len(), 10);
        // High months: 3 of 10 nodes failed.
        let high: Vec<&MonthlyFluxPoint> = cpu
            .iter()
            .filter(|p| p.counts_per_minute > 4000.0)
            .collect();
        assert!(high.iter().all(|p| (p.probability - 0.3).abs() < 1e-9));
        let low: Vec<&MonthlyFluxPoint> = cpu
            .iter()
            .filter(|p| p.counts_per_minute < 4000.0)
            .collect();
        assert!(low.iter().all(|p| p.probability == 0.0));
    }

    #[test]
    fn cpu_correlates_dram_does_not() {
        let trace = build();
        let a = CosmicAnalysis::over(&trace);
        let cpu = a
            .flux_correlation(SystemId::new(18), FailureClass::Hw(HardwareComponent::Cpu))
            .unwrap();
        assert!(cpu > 0.95, "cpu r = {cpu}");
        let dram = a
            .flux_correlation(
                SystemId::new(18),
                FailureClass::Hw(HardwareComponent::MemoryDimm),
            )
            .unwrap_or(0.0);
        assert!(dram.abs() < 0.3, "dram r = {dram}");
    }

    #[test]
    fn rank_correlation_same_direction() {
        let trace = build();
        let a = CosmicAnalysis::over(&trace);
        let cpu = a
            .flux_rank_correlation(SystemId::new(18), FailureClass::Hw(HardwareComponent::Cpu))
            .unwrap();
        assert!(cpu > 0.9);
    }

    #[test]
    fn binned_series_collapses_to_two_levels() {
        let trace = build();
        let a = CosmicAnalysis::over(&trace);
        let bins = a.binned_series(
            SystemId::new(18),
            FailureClass::Hw(HardwareComponent::Cpu),
            2,
        );
        assert_eq!(bins.len(), 2);
        assert!(bins[0].0 < bins[1].0);
        assert!(bins[0].1 < bins[1].1);
    }

    #[test]
    fn unknown_system_empty() {
        let trace = build();
        let a = CosmicAnalysis::over(&trace);
        assert!(a
            .monthly_series(SystemId::new(99), FailureClass::Any)
            .is_empty());
        assert!(a
            .flux_correlation(SystemId::new(99), FailureClass::Any)
            .is_none());
    }
}
