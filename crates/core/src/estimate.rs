//! The shared conditional-vs-baseline estimate.

use hpcfail_stats::proportion::{ConfidenceInterval, Proportion, ProportionTest};
use hpcfail_store::query::WindowCounts;
use std::fmt;

/// A conditional probability compared against its empirical baseline —
/// the unit of every bar in the paper's Figures 1-3, 6, 10, 11 and 13.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConditionalEstimate {
    /// Probability of the target event in the window following a
    /// trigger.
    pub conditional: Proportion,
    /// Probability of the target event in a random window of the same
    /// length.
    pub baseline: Proportion,
}

impl ConditionalEstimate {
    /// Builds an estimate from raw window counts.
    pub fn from_counts(conditional: WindowCounts, baseline: WindowCounts) -> Self {
        ConditionalEstimate {
            conditional: Proportion::new(conditional.hits, conditional.total),
            baseline: Proportion::new(baseline.hits, baseline.total),
        }
    }

    /// Merges two estimates (e.g. across the systems of a group).
    pub fn merge(self, other: ConditionalEstimate) -> Self {
        ConditionalEstimate {
            conditional: self.conditional.merge(other.conditional),
            baseline: self.baseline.merge(other.baseline),
        }
    }

    /// The factor increase over the baseline — the "7.2x" annotations.
    /// `None` when the baseline is zero.
    pub fn factor(&self) -> Option<f64> {
        self.conditional.factor_over(self.baseline)
    }

    /// 95% Wilson interval on the conditional probability.
    pub fn conditional_ci(&self) -> ConfidenceInterval {
        self.conditional.wilson_ci(0.95)
    }

    /// 95% Wilson interval on the baseline probability.
    pub fn baseline_ci(&self) -> ConfidenceInterval {
        self.baseline.wilson_ci(0.95)
    }

    /// Two-sample proportion z-test of conditional vs baseline — the
    /// paper's significance test for every conditional comparison.
    pub fn test(&self) -> ProportionTest {
        self.conditional.two_sample_z_test(self.baseline)
    }

    /// 95% confidence interval on the *factor* (risk ratio), by the
    /// delta method on the log scale:
    /// `Var(ln RR) ~ (1-p1)/(n1 p1) + (1-p2)/(n2 p2)`.
    ///
    /// Returns `None` when either side has zero successes or trials
    /// (the log-ratio is undefined there).
    pub fn factor_ci(&self) -> Option<(f64, f64)> {
        let (s1, n1) = (self.conditional.successes(), self.conditional.trials());
        let (s2, n2) = (self.baseline.successes(), self.baseline.trials());
        if s1 == 0 || s2 == 0 || n1 == 0 || n2 == 0 {
            return None;
        }
        let p1 = self.conditional.estimate();
        let p2 = self.baseline.estimate();
        let var = (1.0 - p1) / (s1 as f64) + (1.0 - p2) / (s2 as f64);
        let log_rr = (p1 / p2).ln();
        let half = 1.96 * var.sqrt();
        Some(((log_rr - half).exp(), (log_rr + half).exp()))
    }

    /// `true` if the conditional probability differs significantly from
    /// the baseline at level `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.test().significant_at(alpha)
    }

    /// An empty estimate (no triggers observed).
    pub fn empty() -> Self {
        ConditionalEstimate {
            conditional: Proportion::EMPTY,
            baseline: Proportion::EMPTY,
        }
    }

    /// `true` when no trigger windows were observed.
    pub fn is_empty(&self) -> bool {
        self.conditional.trials() == 0
    }
}

impl fmt::Display for ConditionalEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let factor = self
            .factor()
            .map_or("NA".to_owned(), |x| format!("{x:.1}x"));
        write!(
            f,
            "{:.4} vs {:.4} ({factor}, n={})",
            self.conditional.estimate(),
            self.baseline.estimate(),
            self.conditional.trials(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_counts_and_factor() {
        let e = ConditionalEstimate::from_counts(
            WindowCounts {
                hits: 72,
                total: 1000,
            },
            WindowCounts {
                hits: 31,
                total: 10_000,
            },
        );
        let f = e.factor().unwrap();
        assert!((f - 0.072 / 0.0031).abs() < 1e-9);
        assert!(e.significant_at(0.01));
    }

    #[test]
    fn merge_pools_counts() {
        let a = ConditionalEstimate::from_counts(
            WindowCounts { hits: 1, total: 10 },
            WindowCounts {
                hits: 2,
                total: 100,
            },
        );
        let b = ConditionalEstimate::from_counts(
            WindowCounts { hits: 3, total: 10 },
            WindowCounts {
                hits: 1,
                total: 100,
            },
        );
        let m = a.merge(b);
        assert_eq!(m.conditional.trials(), 20);
        assert_eq!(m.conditional.successes(), 4);
        assert_eq!(m.baseline.trials(), 200);
    }

    #[test]
    fn empty_estimate_behaviour() {
        let e = ConditionalEstimate::empty();
        assert!(e.is_empty());
        assert_eq!(e.factor(), None);
        assert!(!e.significant_at(0.05));
        assert_eq!(e.to_string(), "0.0000 vs 0.0000 (NA, n=0)");
    }

    #[test]
    fn factor_ci_brackets_factor() {
        let e = ConditionalEstimate::from_counts(
            WindowCounts {
                hits: 72,
                total: 1000,
            },
            WindowCounts {
                hits: 310,
                total: 100_000,
            },
        );
        let (lo, hi) = e.factor_ci().expect("both sides have successes");
        let f = e.factor().unwrap();
        assert!(lo < f && f < hi, "[{lo}, {hi}] around {f}");
        assert!(lo > 1.0, "significantly above 1: lo = {lo}");
    }

    #[test]
    fn factor_ci_narrows_with_sample_size() {
        let small = ConditionalEstimate::from_counts(
            WindowCounts {
                hits: 7,
                total: 100,
            },
            WindowCounts {
                hits: 31,
                total: 10_000,
            },
        );
        let large = ConditionalEstimate::from_counts(
            WindowCounts {
                hits: 700,
                total: 10_000,
            },
            WindowCounts {
                hits: 3100,
                total: 1_000_000,
            },
        );
        let (slo, shi) = small.factor_ci().unwrap();
        let (llo, lhi) = large.factor_ci().unwrap();
        assert!(lhi / llo < shi / slo, "large-sample CI is tighter");
    }

    #[test]
    fn factor_ci_undefined_without_successes() {
        let e = ConditionalEstimate::from_counts(
            WindowCounts {
                hits: 0,
                total: 100,
            },
            WindowCounts {
                hits: 5,
                total: 100,
            },
        );
        assert_eq!(e.factor_ci(), None);
        assert_eq!(ConditionalEstimate::empty().factor_ci(), None);
    }

    #[test]
    fn display_format() {
        let e = ConditionalEstimate::from_counts(
            WindowCounts {
                hits: 5,
                total: 100,
            },
            WindowCounts {
                hits: 1,
                total: 100,
            },
        );
        assert_eq!(e.to_string(), "0.0500 vs 0.0100 (5.0x, n=100)");
    }
}
