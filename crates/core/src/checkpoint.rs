//! Extension: what the correlations are worth for checkpoint
//! scheduling.
//!
//! The paper motivates its correlation analysis with "scheduling
//! application checkpoints". This module makes the payoff measurable:
//! it replays a trace's failure timeline under a checkpoint policy and
//! accounts for checkpoint overhead, lost work and restart time. Two
//! policies are provided — a uniform interval (the classic Daly/Young
//! regime) and an *adaptive* one that checkpoints more often while a
//! node is inside the paper's high-risk window after a failure.

use crate::predict::AlarmRule;
use hpcfail_store::trace::{SystemTrace, Trace};
use hpcfail_types::prelude::*;

/// A checkpointing policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckpointPolicy {
    /// Checkpoint every `interval_hours`, always.
    Uniform {
        /// Checkpoint spacing in hours.
        interval_hours: f64,
    },
    /// Checkpoint every `base_hours` normally, but every `flagged_hours`
    /// while the node is inside the alarm window after a failure
    /// matching `rule`.
    Adaptive {
        /// Normal checkpoint spacing in hours.
        base_hours: f64,
        /// Spacing while flagged (should be smaller).
        flagged_hours: f64,
        /// What flags a node, and for how long.
        rule: AlarmRule,
    },
}

/// Cost model and outcome of replaying a policy over a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointOutcome {
    /// Node-hours spent writing checkpoints.
    pub checkpoint_hours: f64,
    /// Node-hours of work lost to failures (work since last checkpoint).
    pub lost_hours: f64,
    /// Node-hours spent restarting after failures.
    pub restart_hours: f64,
    /// Total observed node-hours.
    pub total_hours: f64,
    /// Failures replayed.
    pub failures: u64,
}

impl CheckpointOutcome {
    /// Fraction of node-time spent on useful work:
    /// `1 - (checkpoint + lost + restart) / total`.
    pub fn goodput(&self) -> f64 {
        if self.total_hours <= 0.0 {
            return 0.0;
        }
        (1.0 - (self.checkpoint_hours + self.lost_hours + self.restart_hours) / self.total_hours)
            .clamp(0.0, 1.0)
    }

    fn merge(self, other: CheckpointOutcome) -> CheckpointOutcome {
        CheckpointOutcome {
            checkpoint_hours: self.checkpoint_hours + other.checkpoint_hours,
            lost_hours: self.lost_hours + other.lost_hours,
            restart_hours: self.restart_hours + other.restart_hours,
            total_hours: self.total_hours + other.total_hours,
            failures: self.failures + other.failures,
        }
    }

    fn zero() -> CheckpointOutcome {
        CheckpointOutcome {
            checkpoint_hours: 0.0,
            lost_hours: 0.0,
            restart_hours: 0.0,
            total_hours: 0.0,
            failures: 0,
        }
    }
}

/// The replay engine.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointSimulator {
    /// Time to write one checkpoint, in hours.
    pub checkpoint_cost_hours: f64,
    /// Time to restart after a failure, in hours.
    pub restart_cost_hours: f64,
}

impl CheckpointSimulator {
    /// A simulator with typical HPC costs (6-minute checkpoints,
    /// 30-minute restarts).
    pub fn typical() -> Self {
        CheckpointSimulator {
            checkpoint_cost_hours: 0.1,
            restart_cost_hours: 0.5,
        }
    }

    /// Young/Daly first-order optimal uniform interval
    /// `sqrt(2 * checkpoint_cost * MTBF)`, in hours.
    ///
    /// # Panics
    ///
    /// Panics if `mtbf_hours` is not positive.
    pub fn daly_interval(&self, mtbf_hours: f64) -> f64 {
        assert!(mtbf_hours > 0.0, "MTBF must be positive");
        (2.0 * self.checkpoint_cost_hours * mtbf_hours).sqrt()
    }

    /// Replays `policy` over every node of every system in `group`.
    pub fn replay_group(
        &self,
        trace: &Trace,
        group: SystemGroup,
        policy: CheckpointPolicy,
    ) -> CheckpointOutcome {
        trace
            .group_systems(group)
            .map(|s| self.replay_system(s, policy))
            .fold(CheckpointOutcome::zero(), CheckpointOutcome::merge)
    }

    /// Replays `policy` over one system.
    pub fn replay_system(
        &self,
        system: &SystemTrace,
        policy: CheckpointPolicy,
    ) -> CheckpointOutcome {
        let mut outcome = CheckpointOutcome::zero();
        let config = system.config();
        let span_hours = config.observation_span().as_seconds().max(0) as f64 / 3600.0;
        for node in system.nodes() {
            outcome = outcome.merge(self.replay_node(system, node, span_hours, policy));
        }
        outcome
    }

    fn replay_node(
        &self,
        system: &SystemTrace,
        node: NodeId,
        span_hours: f64,
        policy: CheckpointPolicy,
    ) -> CheckpointOutcome {
        let start = system.config().start;
        let failure_hours: Vec<f64> = system
            .node_failures(node)
            .map(|f| (f.time - start).as_seconds() as f64 / 3600.0)
            .collect();

        // Interval in effect at time t (hours since start).
        let interval_at = |t: f64| -> f64 {
            match policy {
                CheckpointPolicy::Uniform { interval_hours } => interval_hours,
                CheckpointPolicy::Adaptive {
                    base_hours,
                    flagged_hours,
                    rule,
                } => {
                    let window_h = rule.window.duration().as_seconds() as f64 / 3600.0;
                    let flagged = failure_hours.iter().any(|&fh| {
                        fh < t && t <= fh + window_h && {
                            // The rule's class must match the triggering
                            // failure; re-check against the records.
                            system.node_failures(node).any(|f| {
                                rule.trigger.matches(f)
                                    && ((f.time - start).as_seconds() as f64 / 3600.0 - fh).abs()
                                        < 1e-9
                            })
                        }
                    });
                    if flagged {
                        flagged_hours
                    } else {
                        base_hours
                    }
                }
            }
        };

        let mut outcome = CheckpointOutcome::zero();
        outcome.total_hours = span_hours;
        // Walk time forward checkpoint by checkpoint; on failure, lose
        // the work since the last checkpoint plus the restart cost.
        let mut t = 0.0;
        let mut last_checkpoint = 0.0;
        let mut failure_iter = failure_hours.iter().copied().peekable();
        while t < span_hours {
            let interval = interval_at(t).max(0.01);
            let next_checkpoint = t + interval;
            match failure_iter.peek().copied() {
                Some(fail_at) if fail_at <= next_checkpoint && fail_at < span_hours => {
                    // Failure before the next checkpoint completes.
                    failure_iter.next();
                    outcome.failures += 1;
                    outcome.lost_hours += (fail_at - last_checkpoint).max(0.0);
                    outcome.restart_hours += self.restart_cost_hours;
                    t = fail_at + self.restart_cost_hours;
                    last_checkpoint = t;
                }
                _ => {
                    if next_checkpoint >= span_hours {
                        break;
                    }
                    outcome.checkpoint_hours += self.checkpoint_cost_hours;
                    t = next_checkpoint + self.checkpoint_cost_hours;
                    last_checkpoint = t;
                }
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcfail_store::trace::SystemTraceBuilder;

    fn build(failure_days: &[(u32, f64)]) -> Trace {
        let config = SystemConfig {
            id: SystemId::new(1),
            name: "t".into(),
            nodes: 2,
            procs_per_node: 4,
            hardware: HardwareClass::Smp4Way,
            start: Timestamp::EPOCH,
            end: Timestamp::from_days(100.0),
            has_layout: false,
            has_job_log: false,
            has_temperature: false,
        };
        let mut b = SystemTraceBuilder::new(config);
        for &(node, day) in failure_days {
            b.push_failure(FailureRecord::new(
                SystemId::new(1),
                NodeId::new(node),
                Timestamp::from_days(day),
                RootCause::Hardware,
                SubCause::None,
            ));
        }
        let mut trace = Trace::new();
        trace.insert_system(b.build());
        trace
    }

    #[test]
    fn failure_free_node_pays_only_checkpoints() {
        let trace = build(&[]);
        let sim = CheckpointSimulator::typical();
        let outcome = sim.replay_group(
            &trace,
            SystemGroup::Group1,
            CheckpointPolicy::Uniform {
                interval_hours: 24.0,
            },
        );
        assert_eq!(outcome.failures, 0);
        assert_eq!(outcome.lost_hours, 0.0);
        assert_eq!(outcome.restart_hours, 0.0);
        // ~100 checkpoints per node x 0.1h x 2 nodes, minus edge effects.
        assert!(outcome.checkpoint_hours > 15.0 && outcome.checkpoint_hours < 22.0);
        assert!(outcome.goodput() > 0.99);
    }

    #[test]
    fn lost_work_bounded_by_interval() {
        // One failure at day 10; with a 24h interval the loss is at
        // most 24h (+restart).
        let trace = build(&[(0, 10.2)]);
        let sim = CheckpointSimulator::typical();
        let outcome = sim.replay_group(
            &trace,
            SystemGroup::Group1,
            CheckpointPolicy::Uniform {
                interval_hours: 24.0,
            },
        );
        assert_eq!(outcome.failures, 1);
        assert!(
            outcome.lost_hours <= 24.0 + 1e-9,
            "lost {}",
            outcome.lost_hours
        );
        assert!(outcome.lost_hours > 0.0);
        assert!((outcome.restart_hours - 0.5).abs() < 1e-9);
    }

    #[test]
    fn shorter_interval_loses_less_but_checkpoints_more() {
        let failures: Vec<(u32, f64)> = (1..20).map(|i| (0u32, i as f64 * 5.0)).collect();
        let trace = build(&failures);
        let sim = CheckpointSimulator::typical();
        let coarse = sim.replay_group(
            &trace,
            SystemGroup::Group1,
            CheckpointPolicy::Uniform {
                interval_hours: 48.0,
            },
        );
        let fine = sim.replay_group(
            &trace,
            SystemGroup::Group1,
            CheckpointPolicy::Uniform {
                interval_hours: 6.0,
            },
        );
        assert!(fine.lost_hours < coarse.lost_hours);
        assert!(fine.checkpoint_hours > coarse.checkpoint_hours);
    }

    #[test]
    fn adaptive_beats_uniform_on_clustered_failures() {
        // Bursts: failures arrive in tight pairs, so the window after a
        // failure is exactly when cheap checkpoints pay off.
        let mut failures = Vec::new();
        for k in 0..12 {
            let day = 3.0 + k as f64 * 8.0;
            failures.push((0u32, day));
            failures.push((0u32, day + 0.5));
            failures.push((0u32, day + 1.0));
        }
        let trace = build(&failures);
        let sim = CheckpointSimulator::typical();
        let uniform = sim.replay_group(
            &trace,
            SystemGroup::Group1,
            CheckpointPolicy::Uniform {
                interval_hours: 24.0,
            },
        );
        let adaptive = sim.replay_group(
            &trace,
            SystemGroup::Group1,
            CheckpointPolicy::Adaptive {
                base_hours: 24.0,
                flagged_hours: 2.0,
                rule: AlarmRule {
                    trigger: FailureClass::Any,
                    window: Window::Day,
                },
            },
        );
        assert!(
            adaptive.goodput() > uniform.goodput(),
            "adaptive {} <= uniform {}",
            adaptive.goodput(),
            uniform.goodput()
        );
        assert!(adaptive.lost_hours < uniform.lost_hours);
    }

    #[test]
    fn daly_interval_formula() {
        let sim = CheckpointSimulator::typical();
        // sqrt(2 * 0.1 * 1000) = sqrt(200) ~ 14.14.
        assert!((sim.daly_interval(1000.0) - 200f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "MTBF must be positive")]
    fn daly_rejects_nonpositive_mtbf() {
        let _ = CheckpointSimulator::typical().daly_interval(0.0);
    }
}
