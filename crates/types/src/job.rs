//! Job records from system usage logs.
//!
//! Two LANL systems (8 and 20) ship job logs: submission, dispatch and end
//! times, the requested processor count, the submitting user and the nodes
//! the job ran on. These drive the paper's usage (Section V) and per-user
//! (Section VI) analyses.

use crate::ids::{JobId, NodeId, SystemId, UserId};
use crate::time::{Duration, Timestamp};

/// One job from a system's usage log.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JobRecord {
    /// The system the job ran on.
    pub system: SystemId,
    /// The job's number within the log.
    pub job_id: JobId,
    /// The submitting user.
    pub user: UserId,
    /// When the job entered the queue.
    pub submit: Timestamp,
    /// When the job was dispatched from the queue to start running.
    pub dispatch: Timestamp,
    /// When the job finished.
    pub end: Timestamp,
    /// Number of processors requested.
    pub procs: u32,
    /// The nodes the job was assigned to.
    pub nodes: Vec<NodeId>,
}

impl JobRecord {
    /// The job's wall-clock run time (dispatch to end).
    ///
    /// Returns [`Duration::ZERO`] for malformed records whose end precedes
    /// their dispatch.
    pub fn runtime(&self) -> Duration {
        let d = self.end - self.dispatch;
        if d.is_positive() {
            d
        } else {
            Duration::ZERO
        }
    }

    /// Time spent waiting in the queue (submit to dispatch), clamped to zero.
    pub fn queue_wait(&self) -> Duration {
        let d = self.dispatch - self.submit;
        if d.is_positive() {
            d
        } else {
            Duration::ZERO
        }
    }

    /// Processor-days consumed: `procs x runtime`, the unit Section VI
    /// normalizes per-user failure counts by.
    pub fn processor_days(&self) -> f64 {
        self.procs as f64 * self.runtime().as_days()
    }

    /// `true` if the job occupied `node` at trace time `t`
    /// (dispatch inclusive, end exclusive).
    pub fn occupies(&self, node: NodeId, t: Timestamp) -> bool {
        self.dispatch <= t && t < self.end && self.nodes.contains(&node)
    }

    /// `true` if the record is internally consistent: dispatch not before
    /// submit, end not before dispatch, at least one processor and node.
    pub fn is_well_formed(&self) -> bool {
        self.submit <= self.dispatch
            && self.dispatch <= self.end
            && self.procs >= 1
            && !self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> JobRecord {
        JobRecord {
            system: SystemId::new(8),
            job_id: JobId::new(1),
            user: UserId::new(3),
            submit: Timestamp::from_days(1.0),
            dispatch: Timestamp::from_days(1.5),
            end: Timestamp::from_days(3.5),
            procs: 4,
            nodes: vec![NodeId::new(10), NodeId::new(11)],
        }
    }

    #[test]
    fn runtime_and_wait() {
        let j = job();
        assert_eq!(j.runtime(), Duration::from_days(2.0));
        assert_eq!(j.queue_wait(), Duration::from_days(0.5));
    }

    #[test]
    fn processor_days() {
        let j = job();
        assert!((j.processor_days() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn occupies_respects_interval_and_nodes() {
        let j = job();
        assert!(j.occupies(NodeId::new(10), Timestamp::from_days(2.0)));
        assert!(j.occupies(NodeId::new(10), Timestamp::from_days(1.5)));
        assert!(!j.occupies(NodeId::new(10), Timestamp::from_days(3.5)));
        assert!(!j.occupies(NodeId::new(10), Timestamp::from_days(1.0)));
        assert!(!j.occupies(NodeId::new(99), Timestamp::from_days(2.0)));
    }

    #[test]
    fn malformed_runtime_clamps_to_zero() {
        let mut j = job();
        j.end = Timestamp::from_days(1.0);
        assert_eq!(j.runtime(), Duration::ZERO);
        assert!(!j.is_well_formed());
    }

    #[test]
    fn well_formed_checks() {
        assert!(job().is_well_formed());
        let mut j = job();
        j.procs = 0;
        assert!(!j.is_well_formed());
        let mut j = job();
        j.nodes.clear();
        assert!(!j.is_well_formed());
    }
}
