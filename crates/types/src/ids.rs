//! Typed identifiers for systems, nodes, racks, users and jobs.
//!
//! Newtypes keep the different index spaces from being confused
//! (C-NEWTYPE): a [`NodeId`] is an index *within one system*, a
//! [`SystemId`] is the LANL-style system number, and so on.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name($inner);

        impl $name {
            /// Creates an identifier from its raw integer value.
            pub const fn new(raw: $inner) -> Self {
                Self(raw)
            }

            /// The raw integer value.
            pub const fn raw(self) -> $inner {
                self.0
            }

            /// The raw value as a `usize`, for indexing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(raw: $inner) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for $inner {
            fn from(id: $name) -> $inner {
                id.0
            }
        }
    };
}

id_type!(
    /// A LANL-style system (cluster) number, e.g. system 20.
    SystemId,
    u16,
    "sys"
);

id_type!(
    /// A node index within one system. Node 0 is conventionally the
    /// login/launch node in LANL systems.
    NodeId,
    u32,
    "node"
);

id_type!(
    /// A rack index within one system's machine-room layout.
    RackId,
    u16,
    "rack"
);

id_type!(
    /// A user account index within one system's job log.
    UserId,
    u32,
    "user"
);

id_type!(
    /// A job number within one system's job log.
    JobId,
    u64,
    "job"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn roundtrip_raw() {
        assert_eq!(SystemId::new(20).raw(), 20);
        assert_eq!(NodeId::new(157).index(), 157);
        assert_eq!(u64::from(JobId::new(9)), 9);
        assert_eq!(RackId::from(3u16), RackId::new(3));
    }

    #[test]
    fn display_prefixes() {
        assert_eq!(SystemId::new(2).to_string(), "sys2");
        assert_eq!(NodeId::new(0).to_string(), "node0");
        assert_eq!(UserId::new(7).to_string(), "user7");
        assert_eq!(RackId::new(1).to_string(), "rack1");
        assert_eq!(JobId::new(42).to_string(), "job42");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(2));
        assert_eq!(set.len(), 2);
        assert!(NodeId::new(1) < NodeId::new(2));
    }
}
