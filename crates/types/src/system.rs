//! System (cluster) descriptions and the group-1/group-2 split.
//!
//! The paper divides the ten LANL clusters into two hardware groups:
//! group 1 (seven systems of 4-way SMP nodes; 2848 nodes, 11392
//! processors in total) and group 2 (three NUMA systems with few nodes
//! but ~128 processors per node; 70 nodes, 8744 processors in total).

use crate::ids::SystemId;
use crate::time::{Duration, Timestamp};
use std::fmt;

/// The node hardware architecture of a system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HardwareClass {
    /// 4-way symmetric-multiprocessing nodes (group-1 systems).
    Smp4Way,
    /// Non-uniform-memory-access nodes with ~128 processors (group-2).
    Numa,
}

impl fmt::Display for HardwareClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HardwareClass::Smp4Way => f.write_str("4-way SMP"),
            HardwareClass::Numa => f.write_str("NUMA"),
        }
    }
}

/// The paper's two-way grouping of LANL systems by hardware architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SystemGroup {
    /// Seven SMP-based systems (LANL IDs 3, 4, 5, 6, 18, 19, 20).
    Group1,
    /// Three NUMA-based systems (LANL IDs 2, 16, 23).
    Group2,
}

impl SystemGroup {
    /// Both groups.
    pub const ALL: [SystemGroup; 2] = [SystemGroup::Group1, SystemGroup::Group2];

    /// The label used in the paper's figures.
    pub const fn label(self) -> &'static str {
        match self {
            SystemGroup::Group1 => "LANL Group-1",
            SystemGroup::Group2 => "LANL Group-2",
        }
    }

    /// The hardware class of the group's nodes.
    pub const fn hardware_class(self) -> HardwareClass {
        match self {
            SystemGroup::Group1 => HardwareClass::Smp4Way,
            SystemGroup::Group2 => HardwareClass::Numa,
        }
    }

    /// The compact wire form used by serialized analysis requests
    /// (`"group1"` / `"group2"`); round-trips through [`FromStr`](std::str::FromStr).
    pub const fn wire(self) -> &'static str {
        match self {
            SystemGroup::Group1 => "group1",
            SystemGroup::Group2 => "group2",
        }
    }
}

impl fmt::Display for SystemGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing a [`SystemGroup`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGroupError(String);

impl fmt::Display for ParseGroupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown system group {:?}, expected group1 or group2",
            self.0
        )
    }
}

impl std::error::Error for ParseGroupError {}

impl std::str::FromStr for SystemGroup {
    type Err = ParseGroupError;

    /// Accepts the wire form (`group1`), the paper's label
    /// (`LANL Group-1`), and a few obvious shorthands (`g1`, `1`),
    /// all case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut key = s.to_ascii_lowercase();
        key.retain(|c| !matches!(c, ' ' | '-' | '_'));
        match key.strip_prefix("lanl").unwrap_or(&key) {
            "group1" | "g1" | "1" => Ok(SystemGroup::Group1),
            "group2" | "g2" | "2" => Ok(SystemGroup::Group2),
            _ => Err(ParseGroupError(s.to_owned())),
        }
    }
}

/// Static description of one system (cluster).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SystemConfig {
    /// LANL-style system number.
    pub id: SystemId,
    /// Human-readable name.
    pub name: String,
    /// Number of nodes.
    pub nodes: u32,
    /// Processors per node.
    pub procs_per_node: u32,
    /// Node hardware architecture.
    pub hardware: HardwareClass,
    /// Start of the observation period.
    pub start: Timestamp,
    /// End of the observation period (exclusive).
    pub end: Timestamp,
    /// `true` if a machine-room layout file is available.
    pub has_layout: bool,
    /// `true` if a job/usage log is available.
    pub has_job_log: bool,
    /// `true` if periodic temperature samples are available.
    pub has_temperature: bool,
}

impl SystemConfig {
    /// The paper's hardware group for this system.
    pub const fn group(&self) -> SystemGroup {
        match self.hardware {
            HardwareClass::Smp4Way => SystemGroup::Group1,
            HardwareClass::Numa => SystemGroup::Group2,
        }
    }

    /// Total processors in the system.
    pub const fn total_procs(&self) -> u64 {
        self.nodes as u64 * self.procs_per_node as u64
    }

    /// The observation span.
    pub fn observation_span(&self) -> Duration {
        self.end - self.start
    }

    /// The observation span in whole days (floored).
    pub fn observation_days(&self) -> i64 {
        self.observation_span().as_seconds() / crate::time::SECONDS_PER_DAY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SystemConfig {
        SystemConfig {
            id: SystemId::new(20),
            name: "system-20".into(),
            nodes: 512,
            procs_per_node: 4,
            hardware: HardwareClass::Smp4Way,
            start: Timestamp::EPOCH,
            end: Timestamp::from_days(1825.0),
            has_layout: true,
            has_job_log: true,
            has_temperature: true,
        }
    }

    #[test]
    fn grouping_follows_hardware() {
        let mut c = config();
        assert_eq!(c.group(), SystemGroup::Group1);
        c.hardware = HardwareClass::Numa;
        assert_eq!(c.group(), SystemGroup::Group2);
    }

    #[test]
    fn totals_and_span() {
        let c = config();
        assert_eq!(c.total_procs(), 2048);
        assert_eq!(c.observation_days(), 1825);
        assert_eq!(c.observation_span(), Duration::from_days(1825.0));
    }

    #[test]
    fn group_labels() {
        assert_eq!(SystemGroup::Group1.label(), "LANL Group-1");
        assert_eq!(SystemGroup::Group2.hardware_class(), HardwareClass::Numa);
        assert_eq!(HardwareClass::Smp4Way.to_string(), "4-way SMP");
    }

    #[test]
    fn group_wire_roundtrip() {
        for g in SystemGroup::ALL {
            assert_eq!(g.wire().parse::<SystemGroup>().unwrap(), g);
            assert_eq!(g.label().parse::<SystemGroup>().unwrap(), g);
        }
        assert_eq!("G1".parse::<SystemGroup>().unwrap(), SystemGroup::Group1);
        assert_eq!("2".parse::<SystemGroup>().unwrap(), SystemGroup::Group2);
        assert!("group3".parse::<SystemGroup>().is_err());
    }
}
