//! Trace time: timestamps, durations and analysis windows.
//!
//! All trace records carry a [`Timestamp`] measured in seconds since the
//! start of the observation period. The paper's analyses condition on
//! fixed-length [`Window`]s (day, week, month) following a trigger event.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::str::FromStr;

/// Number of seconds in a day.
pub const SECONDS_PER_DAY: i64 = 86_400;
/// Number of seconds in a (7-day) week.
pub const SECONDS_PER_WEEK: i64 = 7 * SECONDS_PER_DAY;
/// Number of seconds in a (30-day) month, the convention used throughout.
pub const SECONDS_PER_MONTH: i64 = 30 * SECONDS_PER_DAY;

/// A point in trace time, in whole seconds since the trace epoch.
///
/// The trace epoch is the start of the observation period of the data set,
/// not a calendar date; analyses only ever use differences and window
/// arithmetic, so an abstract epoch is sufficient and keeps synthetic and
/// ingested traces on the same footing.
///
/// # Examples
///
/// ```
/// use hpcfail_types::time::{Duration, Timestamp};
///
/// let t = Timestamp::from_days(2.0) + Duration::from_hours(12.0);
/// assert_eq!(t.as_days(), 2.5);
/// assert_eq!(t.day_index(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp(i64);

impl Timestamp {
    /// The trace epoch (time zero).
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Creates a timestamp from whole seconds since the trace epoch.
    pub const fn from_seconds(seconds: i64) -> Self {
        Timestamp(seconds)
    }

    /// Creates a timestamp from (possibly fractional) days since the epoch.
    ///
    /// Fractions finer than one second are truncated.
    pub fn from_days(days: f64) -> Self {
        Timestamp((days * SECONDS_PER_DAY as f64) as i64)
    }

    /// Seconds since the trace epoch.
    pub const fn as_seconds(self) -> i64 {
        self.0
    }

    /// Days since the trace epoch, as a float.
    pub fn as_days(self) -> f64 {
        self.0 as f64 / SECONDS_PER_DAY as f64
    }

    /// The zero-based index of the day this timestamp falls in.
    ///
    /// Negative timestamps round towards negative infinity so that every
    /// timestamp falls in exactly one day bucket.
    pub const fn day_index(self) -> i64 {
        self.0.div_euclid(SECONDS_PER_DAY)
    }

    /// The zero-based index of the 30-day month this timestamp falls in.
    pub const fn month_index(self) -> i64 {
        self.0.div_euclid(SECONDS_PER_MONTH)
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: Duration) -> Option<Self> {
        self.0.checked_add(d.0).map(Timestamp)
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;

    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;

    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl Sub for Timestamp {
    type Output = Duration;

    fn sub(self, rhs: Timestamp) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

/// A span of trace time in whole seconds. May be negative.
///
/// # Examples
///
/// ```
/// use hpcfail_types::time::Duration;
///
/// assert_eq!(Duration::from_days(1.0), Duration::from_hours(24.0));
/// assert_eq!(Duration::from_days(2.0).as_days(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Duration(i64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from whole seconds.
    pub const fn from_seconds(seconds: i64) -> Self {
        Duration(seconds)
    }

    /// Creates a duration from (possibly fractional) hours, truncated to seconds.
    pub fn from_hours(hours: f64) -> Self {
        Duration((hours * 3600.0) as i64)
    }

    /// Creates a duration from (possibly fractional) days, truncated to seconds.
    pub fn from_days(days: f64) -> Self {
        Duration((days * SECONDS_PER_DAY as f64) as i64)
    }

    /// The duration in whole seconds.
    pub const fn as_seconds(self) -> i64 {
        self.0
    }

    /// The duration in days, as a float.
    pub fn as_days(self) -> f64 {
        self.0 as f64 / SECONDS_PER_DAY as f64
    }

    /// `true` if the duration is strictly positive.
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }
}

impl Add for Duration {
    type Output = Duration;

    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub for Duration {
    type Output = Duration;

    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

/// A fixed-length analysis window following a trigger event.
///
/// The paper conditions failure probabilities on the day, week and
/// (30-day) month following an event, and compares against the probability
/// in a random window of the same length.
///
/// # Examples
///
/// ```
/// use hpcfail_types::time::Window;
///
/// assert_eq!(Window::Week.days(), 7);
/// assert_eq!("month".parse::<Window>()?, Window::Month);
/// # Ok::<(), hpcfail_types::time::ParseWindowError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Window {
    /// One day (24 hours).
    Day,
    /// One week (7 days).
    Week,
    /// One month (30 days).
    Month,
}

impl Window {
    /// All windows, in increasing length.
    pub const ALL: [Window; 3] = [Window::Day, Window::Week, Window::Month];

    /// The window length as a [`Duration`].
    pub const fn duration(self) -> Duration {
        Duration(self.seconds())
    }

    /// The window length in seconds.
    pub const fn seconds(self) -> i64 {
        match self {
            Window::Day => SECONDS_PER_DAY,
            Window::Week => SECONDS_PER_WEEK,
            Window::Month => SECONDS_PER_MONTH,
        }
    }

    /// The window length in whole days.
    pub const fn days(self) -> i64 {
        self.seconds() / SECONDS_PER_DAY
    }

    /// A short lowercase label ("day", "week", "month").
    pub const fn label(self) -> &'static str {
        match self {
            Window::Day => "day",
            Window::Week => "week",
            Window::Month => "month",
        }
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing a [`Window`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWindowError(String);

impl fmt::Display for ParseWindowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown window {:?}, expected day, week or month",
            self.0
        )
    }
}

impl std::error::Error for ParseWindowError {}

impl FromStr for Window {
    type Err = ParseWindowError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "day" | "d" => Ok(Window::Day),
            "week" | "w" => Ok(Window::Week),
            "month" | "m" => Ok(Window::Month),
            _ => Err(ParseWindowError(s.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_day_arithmetic() {
        let t = Timestamp::from_days(3.25);
        assert_eq!(t.day_index(), 3);
        assert_eq!(t.as_seconds(), 3 * SECONDS_PER_DAY + SECONDS_PER_DAY / 4);
        assert!((t.as_days() - 3.25).abs() < 1e-12);
    }

    #[test]
    fn timestamp_negative_day_index_floors() {
        let t = Timestamp::from_seconds(-1);
        assert_eq!(t.day_index(), -1);
        assert_eq!(Timestamp::from_seconds(-SECONDS_PER_DAY).day_index(), -1);
        assert_eq!(
            Timestamp::from_seconds(-SECONDS_PER_DAY - 1).day_index(),
            -2
        );
    }

    #[test]
    fn timestamp_duration_roundtrip() {
        let a = Timestamp::from_days(10.0);
        let b = Timestamp::from_days(17.0);
        assert_eq!(b - a, Duration::from_days(7.0));
        assert_eq!(a + (b - a), b);
        assert_eq!(b - (b - a), a);
    }

    #[test]
    fn timestamp_checked_add_overflow() {
        let t = Timestamp::from_seconds(i64::MAX);
        assert!(t.checked_add(Duration::from_seconds(1)).is_none());
        assert_eq!(
            t.checked_add(Duration::from_seconds(0)),
            Some(Timestamp::from_seconds(i64::MAX))
        );
    }

    #[test]
    fn month_index_buckets() {
        assert_eq!(Timestamp::from_days(29.9).month_index(), 0);
        assert_eq!(Timestamp::from_days(30.0).month_index(), 1);
        assert_eq!(Timestamp::from_days(65.0).month_index(), 2);
    }

    #[test]
    fn window_lengths() {
        assert_eq!(Window::Day.days(), 1);
        assert_eq!(Window::Week.days(), 7);
        assert_eq!(Window::Month.days(), 30);
        assert_eq!(Window::Week.duration(), Duration::from_days(7.0));
    }

    #[test]
    fn window_parse_and_display() {
        for w in Window::ALL {
            assert_eq!(w.to_string().parse::<Window>().unwrap(), w);
        }
        assert!("fortnight".parse::<Window>().is_err());
        let err = "x".parse::<Window>().unwrap_err();
        assert!(err.to_string().contains("unknown window"));
    }

    #[test]
    fn duration_ordering_and_sign() {
        assert!(Duration::from_days(1.0) < Duration::from_days(2.0));
        assert!(Duration::from_seconds(1).is_positive());
        assert!(!Duration::ZERO.is_positive());
        assert!(!(Timestamp::EPOCH - Timestamp::from_seconds(5)).is_positive());
    }
}
