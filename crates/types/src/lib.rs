//! Data model for HPC reliability traces.
//!
//! This crate defines the vocabulary shared by every other `hpcfail` crate:
//! timestamps and analysis windows ([`time`]), identifiers ([`ids`]), the
//! failure taxonomy and failure records ([`failure`]), job records ([`job`]),
//! environmental records ([`env`](mod@env)), machine-room layout ([`layout`]) and
//! system descriptions ([`system`]).
//!
//! The taxonomy mirrors the Los Alamos National Laboratory (LANL) failure
//! data release studied by El-Sayed and Schroeder in *"Reading between the
//! lines of failure logs"* (DSN 2013): six high-level root-cause categories
//! (environment, hardware, human error, network, software, undetermined),
//! with lower-level sub-causes for hardware components, software subsystems
//! and environmental power/cooling problems.
//!
//! # Examples
//!
//! ```
//! use hpcfail_types::prelude::*;
//!
//! let record = FailureRecord::new(
//!     SystemId::new(20),
//!     NodeId::new(0),
//!     Timestamp::from_days(12.5),
//!     RootCause::Hardware,
//!     SubCause::Hardware(HardwareComponent::MemoryDimm),
//! );
//! assert!(FailureClass::Root(RootCause::Hardware).matches(&record));
//! assert!(FailureClass::Hw(HardwareComponent::MemoryDimm).matches(&record));
//! assert!(!FailureClass::Root(RootCause::Network).matches(&record));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod env;
pub mod failure;
pub mod ids;
pub mod job;
pub mod layout;
pub mod system;
pub mod time;

/// Convenient glob import of the most frequently used types.
pub mod prelude {
    pub use crate::env::{MaintenanceRecord, NeutronSample, TemperatureSample};
    pub use crate::failure::{
        EnvironmentCause, FailureClass, FailureRecord, HardwareComponent, RootCause, SoftwareCause,
        SubCause,
    };
    pub use crate::ids::{JobId, NodeId, RackId, SystemId, UserId};
    pub use crate::job::JobRecord;
    pub use crate::layout::{MachineLayout, NodeLocation};
    pub use crate::system::{HardwareClass, SystemConfig, SystemGroup};
    pub use crate::time::{Duration, Timestamp, Window};
}
