//! Environmental and operational records: temperature samples,
//! neutron-monitor counts and maintenance events.

use crate::ids::{NodeId, SystemId};
use crate::time::Timestamp;

/// One periodic motherboard-sensor temperature reading.
///
/// LANL system 20 records periodic ambient temperature from a motherboard
/// sensor; Sections VIII and X regress outages on aggregates of these
/// samples. The paper treats 40 °C as the severe-temperature warning
/// threshold ([`TemperatureSample::HIGH_TEMP_THRESHOLD`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemperatureSample {
    /// The system the sensor belongs to.
    pub system: SystemId,
    /// The node the sensor belongs to.
    pub node: NodeId,
    /// Sampling time.
    pub time: Timestamp,
    /// Ambient temperature in degrees Celsius.
    pub celsius: f64,
}

impl TemperatureSample {
    /// Ambient temperature above which a node reports a severe temperature
    /// warning (Table I's `num_hightemp` counts these).
    pub const HIGH_TEMP_THRESHOLD: f64 = 40.0;

    /// `true` if this sample exceeds the severe-temperature threshold.
    pub fn is_high(&self) -> bool {
        self.celsius > Self::HIGH_TEMP_THRESHOLD
    }
}

/// One neutron-monitor reading: cosmic-ray-induced neutron counts per
/// minute, as published by ground-level neutron-monitor stations.
///
/// The paper uses 1-minute counts from the Climax, Colorado station,
/// aggregated to monthly averages in the 3400-4600 counts/min range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeutronSample {
    /// Sampling time.
    pub time: Timestamp,
    /// Neutron counts per minute.
    pub counts_per_minute: f64,
}

/// One maintenance event on a node.
///
/// Section VII-A.2 observes that power problems sharply increase
/// *unscheduled* hardware-related maintenance; this record captures the
/// fields that analysis needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MaintenanceRecord {
    /// The system the node belongs to.
    pub system: SystemId,
    /// The node undergoing maintenance.
    pub node: NodeId,
    /// When the maintenance started.
    pub time: Timestamp,
    /// `true` if the work addressed a hardware problem.
    pub hardware_related: bool,
    /// `true` if the downtime was scheduled in advance.
    pub scheduled: bool,
}

impl MaintenanceRecord {
    /// `true` for the events Section VII-A.2 counts: unscheduled downtime
    /// due to hardware problems.
    pub const fn is_unscheduled_hardware(&self) -> bool {
        self.hardware_related && !self.scheduled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_temperature_threshold() {
        let mut s = TemperatureSample {
            system: SystemId::new(20),
            node: NodeId::new(1),
            time: Timestamp::EPOCH,
            celsius: 40.0,
        };
        assert!(!s.is_high());
        s.celsius = 40.1;
        assert!(s.is_high());
    }

    #[test]
    fn unscheduled_hardware_maintenance() {
        let base = MaintenanceRecord {
            system: SystemId::new(2),
            node: NodeId::new(4),
            time: Timestamp::EPOCH,
            hardware_related: true,
            scheduled: false,
        };
        assert!(base.is_unscheduled_hardware());
        assert!(!MaintenanceRecord {
            scheduled: true,
            ..base
        }
        .is_unscheduled_hardware());
        assert!(!MaintenanceRecord {
            hardware_related: false,
            ..base
        }
        .is_unscheduled_hardware());
    }
}
