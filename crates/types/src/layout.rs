//! Machine-room layout: which rack each node sits in, and where.
//!
//! Group-1 LANL systems ship "machine layout" files giving each node's
//! position inside a rack and the rack's location in the server room.
//! Rack membership drives the Section III-B rack-correlation analysis;
//! position-in-rack is the `PIR` predictor of Table I.

use crate::ids::{NodeId, RackId};
use std::collections::BTreeMap;

/// The physical location of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeLocation {
    /// The rack the node is mounted in.
    pub rack: RackId,
    /// Vertical slot inside the rack: 1 = bottom, increasing upwards
    /// (LANL racks hold 5 nodes, so 1..=5).
    pub position_in_rack: u8,
    /// Machine-room aisle row of the rack.
    pub room_row: u16,
    /// Machine-room column of the rack within its row.
    pub room_col: u16,
}

/// The layout of one system: a node-to-location map.
///
/// # Examples
///
/// ```
/// use hpcfail_types::ids::{NodeId, RackId};
/// use hpcfail_types::layout::{MachineLayout, NodeLocation};
///
/// let mut layout = MachineLayout::new();
/// layout.place(NodeId::new(0), NodeLocation {
///     rack: RackId::new(0), position_in_rack: 1, room_row: 0, room_col: 0,
/// });
/// layout.place(NodeId::new(1), NodeLocation {
///     rack: RackId::new(0), position_in_rack: 2, room_row: 0, room_col: 0,
/// });
/// assert_eq!(layout.rack_of(NodeId::new(1)), Some(RackId::new(0)));
/// assert_eq!(layout.rack_members(RackId::new(0)).len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineLayout {
    locations: BTreeMap<NodeId, NodeLocation>,
    racks: BTreeMap<RackId, Vec<NodeId>>,
}

impl MachineLayout {
    /// Creates an empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `node` at `location`, replacing any previous placement.
    pub fn place(&mut self, node: NodeId, location: NodeLocation) {
        if let Some(old) = self.locations.insert(node, location) {
            if let Some(members) = self.racks.get_mut(&old.rack) {
                members.retain(|&n| n != node);
            }
        }
        self.racks.entry(location.rack).or_default().push(node);
    }

    /// The location of `node`, if placed.
    pub fn location(&self, node: NodeId) -> Option<NodeLocation> {
        self.locations.get(&node).copied()
    }

    /// The rack `node` is mounted in, if placed.
    pub fn rack_of(&self, node: NodeId) -> Option<RackId> {
        self.location(node).map(|l| l.rack)
    }

    /// All nodes mounted in `rack`, in placement order.
    pub fn rack_members(&self, rack: RackId) -> &[NodeId] {
        self.racks.get(&rack).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Nodes sharing a rack with `node`, excluding `node` itself.
    pub fn rack_neighbors(&self, node: NodeId) -> Vec<NodeId> {
        match self.rack_of(node) {
            Some(rack) => self
                .rack_members(rack)
                .iter()
                .copied()
                .filter(|&n| n != node)
                .collect(),
            None => Vec::new(),
        }
    }

    /// All racks with at least one node, in id order.
    pub fn racks(&self) -> impl Iterator<Item = RackId> + '_ {
        self.racks.keys().copied()
    }

    /// Number of placed nodes.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// `true` if no node has been placed.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// Iterates over `(node, location)` pairs in node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeLocation)> + '_ {
        self.locations.iter().map(|(&n, &l)| (n, l))
    }
}

impl FromIterator<(NodeId, NodeLocation)> for MachineLayout {
    fn from_iter<I: IntoIterator<Item = (NodeId, NodeLocation)>>(iter: I) -> Self {
        let mut layout = MachineLayout::new();
        for (node, loc) in iter {
            layout.place(node, loc);
        }
        layout
    }
}

impl Extend<(NodeId, NodeLocation)> for MachineLayout {
    fn extend<I: IntoIterator<Item = (NodeId, NodeLocation)>>(&mut self, iter: I) {
        for (node, loc) in iter {
            self.place(node, loc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(rack: u16, pos: u8) -> NodeLocation {
        NodeLocation {
            rack: RackId::new(rack),
            position_in_rack: pos,
            room_row: 0,
            room_col: rack,
        }
    }

    #[test]
    fn placement_and_lookup() {
        let layout: MachineLayout = (0..10u32)
            .map(|n| (NodeId::new(n), loc((n / 5) as u16, (n % 5 + 1) as u8)))
            .collect();
        assert_eq!(layout.len(), 10);
        assert_eq!(layout.rack_of(NodeId::new(7)), Some(RackId::new(1)));
        assert_eq!(layout.rack_members(RackId::new(0)).len(), 5);
        assert_eq!(layout.location(NodeId::new(3)).unwrap().position_in_rack, 4);
        assert_eq!(layout.racks().count(), 2);
    }

    #[test]
    fn rack_neighbors_exclude_self() {
        let layout: MachineLayout = (0..5u32)
            .map(|n| (NodeId::new(n), loc(0, (n + 1) as u8)))
            .collect();
        let neighbors = layout.rack_neighbors(NodeId::new(2));
        assert_eq!(neighbors.len(), 4);
        assert!(!neighbors.contains(&NodeId::new(2)));
    }

    #[test]
    fn replacement_moves_rack_membership() {
        let mut layout = MachineLayout::new();
        layout.place(NodeId::new(0), loc(0, 1));
        layout.place(NodeId::new(0), loc(1, 1));
        assert!(layout.rack_members(RackId::new(0)).is_empty());
        assert_eq!(layout.rack_members(RackId::new(1)), &[NodeId::new(0)]);
        assert_eq!(layout.len(), 1);
    }

    #[test]
    fn unplaced_node_has_no_neighbors() {
        let layout = MachineLayout::new();
        assert!(layout.is_empty());
        assert!(layout.rack_neighbors(NodeId::new(9)).is_empty());
        assert_eq!(layout.rack_of(NodeId::new(9)), None);
    }
}
