//! The failure taxonomy and failure records.
//!
//! LANL classifies every node outage into one of six high-level root-cause
//! categories ([`RootCause`]); many records additionally carry a lower-level
//! sub-cause ([`SubCause`]): the hardware component at fault
//! ([`HardwareComponent`]), the software subsystem at fault
//! ([`SoftwareCause`]) or the environmental problem ([`EnvironmentCause`]).
//!
//! Analyses select sets of failures through [`FailureClass`], which unifies
//! "any failure", "failures with root cause X" and "failures with sub-cause
//! Y" behind a single matcher.

use crate::ids::{NodeId, SystemId};
use crate::time::{Duration, Timestamp};
use std::fmt;
use std::str::FromStr;

/// Error returned when parsing a taxonomy label fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCauseError {
    kind: &'static str,
    input: String,
}

impl ParseCauseError {
    fn new(kind: &'static str, input: &str) -> Self {
        ParseCauseError {
            kind,
            input: input.to_owned(),
        }
    }
}

impl fmt::Display for ParseCauseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown {} label {:?}", self.kind, self.input)
    }
}

impl std::error::Error for ParseCauseError {}

/// The six high-level root-cause categories used by LANL operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RootCause {
    /// Facility problems: power outages, power spikes, UPS and chiller
    /// failures, and other machine-room environment issues.
    Environment,
    /// Hardware faults (the most common category; ~60% of LANL failures).
    Hardware,
    /// Mistakes by operators or users with administrative effect.
    HumanError,
    /// Interconnect and network-interface problems.
    Network,
    /// System-software faults, including file/storage-system failures.
    Software,
    /// Root cause never determined.
    Undetermined,
}

impl RootCause {
    /// All root causes in the order the paper's figures use
    /// (ENV, HW, HUMAN, NET, UNDET, SW).
    pub const ALL: [RootCause; 6] = [
        RootCause::Environment,
        RootCause::Hardware,
        RootCause::HumanError,
        RootCause::Network,
        RootCause::Undetermined,
        RootCause::Software,
    ];

    /// The short uppercase label used in the paper's figures.
    pub const fn label(self) -> &'static str {
        match self {
            RootCause::Environment => "ENV",
            RootCause::Hardware => "HW",
            RootCause::HumanError => "HUMAN",
            RootCause::Network => "NET",
            RootCause::Software => "SW",
            RootCause::Undetermined => "UNDET",
        }
    }
}

impl fmt::Display for RootCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for RootCause {
    type Err = ParseCauseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "ENV" | "ENVIRONMENT" => Ok(RootCause::Environment),
            "HW" | "HARDWARE" => Ok(RootCause::Hardware),
            "HUMAN" | "HUMANERROR" | "HUMAN_ERROR" => Ok(RootCause::HumanError),
            "NET" | "NETWORK" => Ok(RootCause::Network),
            "SW" | "SOFTWARE" => Ok(RootCause::Software),
            "UNDET" | "UNDETERMINED" | "UNKNOWN" => Ok(RootCause::Undetermined),
            _ => Err(ParseCauseError::new("root cause", s)),
        }
    }
}

/// The hardware component responsible for a hardware failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HardwareComponent {
    /// Processor faults (~40% of LANL hardware failures).
    Cpu,
    /// Memory DIMM faults (~20% of LANL hardware failures).
    MemoryDimm,
    /// Node-board (motherboard) faults.
    NodeBoard,
    /// Per-node power-supply-unit faults.
    PowerSupply,
    /// Cooling-fan faults.
    Fan,
    /// MSC (module service controller) board faults.
    MscBoard,
    /// Midplane faults.
    Midplane,
    /// Network-interface-card faults.
    Nic,
    /// Local-disk faults.
    Disk,
    /// Any other or unrecorded hardware component.
    Other,
}

impl HardwareComponent {
    /// All components, in the order the paper's figures use.
    pub const ALL: [HardwareComponent; 10] = [
        HardwareComponent::PowerSupply,
        HardwareComponent::MemoryDimm,
        HardwareComponent::NodeBoard,
        HardwareComponent::Fan,
        HardwareComponent::Cpu,
        HardwareComponent::MscBoard,
        HardwareComponent::Midplane,
        HardwareComponent::Nic,
        HardwareComponent::Disk,
        HardwareComponent::Other,
    ];

    /// The label used in the paper's figures.
    pub const fn label(self) -> &'static str {
        match self {
            HardwareComponent::Cpu => "CPU",
            HardwareComponent::MemoryDimm => "Memory",
            HardwareComponent::NodeBoard => "NodeBoard",
            HardwareComponent::PowerSupply => "PowerSupply",
            HardwareComponent::Fan => "Fan",
            HardwareComponent::MscBoard => "MSCBoard",
            HardwareComponent::Midplane => "MidPlane",
            HardwareComponent::Nic => "NIC",
            HardwareComponent::Disk => "Disk",
            HardwareComponent::Other => "OtherHW",
        }
    }
}

impl fmt::Display for HardwareComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for HardwareComponent {
    type Err = ParseCauseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "CPU" => Ok(HardwareComponent::Cpu),
            "MEMORY" | "MEM" | "DIMM" | "MEMORYDIMM" => Ok(HardwareComponent::MemoryDimm),
            "NODEBOARD" | "NODE_BOARD" => Ok(HardwareComponent::NodeBoard),
            "POWERSUPPLY" | "POWER_SUPPLY" | "PSU" => Ok(HardwareComponent::PowerSupply),
            "FAN" => Ok(HardwareComponent::Fan),
            "MSCBOARD" | "MSC_BOARD" | "MSC" => Ok(HardwareComponent::MscBoard),
            "MIDPLANE" => Ok(HardwareComponent::Midplane),
            "NIC" => Ok(HardwareComponent::Nic),
            "DISK" => Ok(HardwareComponent::Disk),
            "OTHERHW" | "OTHER" => Ok(HardwareComponent::Other),
            _ => Err(ParseCauseError::new("hardware component", s)),
        }
    }
}

/// The software subsystem responsible for a software failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SoftwareCause {
    /// Distributed storage system (DST).
    Dst,
    /// Parallel file system (PFS).
    Pfs,
    /// Cluster file system (CFS).
    Cfs,
    /// Operating-system faults.
    Os,
    /// Problems during patch installation.
    PatchInstall,
    /// Any other or unrecorded software subsystem.
    Other,
}

impl SoftwareCause {
    /// All software sub-causes, in the order Figure 11 uses.
    pub const ALL: [SoftwareCause; 6] = [
        SoftwareCause::Dst,
        SoftwareCause::Other,
        SoftwareCause::PatchInstall,
        SoftwareCause::Os,
        SoftwareCause::Pfs,
        SoftwareCause::Cfs,
    ];

    /// The label used in the paper's figures.
    pub const fn label(self) -> &'static str {
        match self {
            SoftwareCause::Dst => "DST",
            SoftwareCause::Pfs => "PFS",
            SoftwareCause::Cfs => "CFS",
            SoftwareCause::Os => "OS",
            SoftwareCause::PatchInstall => "PatchInstl",
            SoftwareCause::Other => "OtherSW",
        }
    }
}

impl fmt::Display for SoftwareCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for SoftwareCause {
    type Err = ParseCauseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "DST" => Ok(SoftwareCause::Dst),
            "PFS" => Ok(SoftwareCause::Pfs),
            "CFS" => Ok(SoftwareCause::Cfs),
            "OS" => Ok(SoftwareCause::Os),
            "PATCHINSTL" | "PATCHINSTALL" | "PATCH_INSTALL" => Ok(SoftwareCause::PatchInstall),
            "OTHERSW" | "OTHER" => Ok(SoftwareCause::Other),
            _ => Err(ParseCauseError::new("software cause", s)),
        }
    }
}

/// The environmental problem behind an environment failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EnvironmentCause {
    /// Complete loss of facility power.
    PowerOutage,
    /// Transient over-voltage event.
    PowerSpike,
    /// Failure in the uninterruptible-power-supply system.
    Ups,
    /// Failure in the chiller (machine-room cooling) system.
    Chiller,
    /// Any other machine-room environment problem.
    Other,
}

impl EnvironmentCause {
    /// All environment sub-causes, in the order Figure 9 uses.
    pub const ALL: [EnvironmentCause; 5] = [
        EnvironmentCause::PowerOutage,
        EnvironmentCause::PowerSpike,
        EnvironmentCause::Ups,
        EnvironmentCause::Chiller,
        EnvironmentCause::Other,
    ];

    /// The label used in the paper's figures.
    pub const fn label(self) -> &'static str {
        match self {
            EnvironmentCause::PowerOutage => "PowerOutage",
            EnvironmentCause::PowerSpike => "PowerSpike",
            EnvironmentCause::Ups => "UPS",
            EnvironmentCause::Chiller => "Chillers",
            EnvironmentCause::Other => "Environment",
        }
    }

    /// `true` for the three power-related environment sub-causes
    /// (outage, spike, UPS).
    pub const fn is_power_related(self) -> bool {
        matches!(
            self,
            EnvironmentCause::PowerOutage | EnvironmentCause::PowerSpike | EnvironmentCause::Ups
        )
    }
}

impl fmt::Display for EnvironmentCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for EnvironmentCause {
    type Err = ParseCauseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "POWEROUTAGE" | "POWER_OUTAGE" | "OUTAGE" => Ok(EnvironmentCause::PowerOutage),
            "POWERSPIKE" | "POWER_SPIKE" | "SPIKE" => Ok(EnvironmentCause::PowerSpike),
            "UPS" => Ok(EnvironmentCause::Ups),
            "CHILLERS" | "CHILLER" => Ok(EnvironmentCause::Chiller),
            "ENVIRONMENT" | "OTHERENV" | "OTHER" => Ok(EnvironmentCause::Other),
            _ => Err(ParseCauseError::new("environment cause", s)),
        }
    }
}

/// The optional lower-level cause attached to a failure record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SubCause {
    /// No lower-level information recorded.
    #[default]
    None,
    /// Hardware failure with a known component.
    Hardware(HardwareComponent),
    /// Software failure with a known subsystem.
    Software(SoftwareCause),
    /// Environment failure with a known problem type.
    Environment(EnvironmentCause),
}

impl SubCause {
    /// `true` when the sub-cause is consistent with the given root cause.
    ///
    /// [`SubCause::None`] is consistent with every root cause; a typed
    /// sub-cause is consistent only with the matching root-cause category.
    pub const fn consistent_with(self, root: RootCause) -> bool {
        match self {
            SubCause::None => true,
            SubCause::Hardware(_) => matches!(root, RootCause::Hardware),
            SubCause::Software(_) => matches!(root, RootCause::Software),
            SubCause::Environment(_) => matches!(root, RootCause::Environment),
        }
    }

    /// A short label: `"-"` for none, the sub-cause label otherwise.
    pub const fn label(self) -> &'static str {
        match self {
            SubCause::None => "-",
            SubCause::Hardware(c) => c.label(),
            SubCause::Software(c) => c.label(),
            SubCause::Environment(c) => c.label(),
        }
    }
}

impl fmt::Display for SubCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl From<HardwareComponent> for SubCause {
    fn from(c: HardwareComponent) -> Self {
        SubCause::Hardware(c)
    }
}

impl From<SoftwareCause> for SubCause {
    fn from(c: SoftwareCause) -> Self {
        SubCause::Software(c)
    }
}

impl From<EnvironmentCause> for SubCause {
    fn from(c: EnvironmentCause) -> Self {
        SubCause::Environment(c)
    }
}

/// One node outage caused by a failure.
///
/// Mirrors a row of the LANL failure logs: which node of which system went
/// down, when, and why (at both taxonomy levels). The optional `downtime`
/// records how long the node was unavailable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FailureRecord {
    /// The system the failed node belongs to.
    pub system: SystemId,
    /// The failed node.
    pub node: NodeId,
    /// When the outage started.
    pub time: Timestamp,
    /// High-level root-cause category assigned by operators.
    pub root_cause: RootCause,
    /// Lower-level cause, when recorded.
    pub sub_cause: SubCause,
    /// Repair/downtime duration, when recorded.
    pub downtime: Option<Duration>,
}

impl FailureRecord {
    /// Creates a failure record with no downtime information.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `sub_cause` is inconsistent with
    /// `root_cause` (e.g. a hardware component on a network failure).
    pub fn new(
        system: SystemId,
        node: NodeId,
        time: Timestamp,
        root_cause: RootCause,
        sub_cause: SubCause,
    ) -> Self {
        debug_assert!(
            sub_cause.consistent_with(root_cause),
            "sub-cause {sub_cause} inconsistent with root cause {root_cause}"
        );
        FailureRecord {
            system,
            node,
            time,
            root_cause,
            sub_cause,
            downtime: None,
        }
    }

    /// Returns a copy with the downtime set.
    pub fn with_downtime(mut self, downtime: Duration) -> Self {
        self.downtime = Some(downtime);
        self
    }
}

/// A selector over failure records, unifying the taxonomy levels.
///
/// # Examples
///
/// ```
/// use hpcfail_types::prelude::*;
///
/// let mem = FailureRecord::new(
///     SystemId::new(18),
///     NodeId::new(3),
///     Timestamp::from_days(1.0),
///     RootCause::Hardware,
///     SubCause::Hardware(HardwareComponent::MemoryDimm),
/// );
/// assert!(FailureClass::Any.matches(&mem));
/// assert!(FailureClass::Hw(HardwareComponent::MemoryDimm).matches(&mem));
/// assert!(!FailureClass::Hw(HardwareComponent::Cpu).matches(&mem));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureClass {
    /// Matches every failure.
    Any,
    /// Matches failures with the given root cause.
    Root(RootCause),
    /// Matches hardware failures attributed to the given component.
    Hw(HardwareComponent),
    /// Matches software failures attributed to the given subsystem.
    Sw(SoftwareCause),
    /// Matches environment failures attributed to the given problem.
    Env(EnvironmentCause),
}

impl FailureClass {
    /// `true` when the record belongs to this class.
    pub fn matches(self, record: &FailureRecord) -> bool {
        match self {
            FailureClass::Any => true,
            FailureClass::Root(root) => record.root_cause == root,
            FailureClass::Hw(c) => record.sub_cause == SubCause::Hardware(c),
            FailureClass::Sw(c) => record.sub_cause == SubCause::Software(c),
            FailureClass::Env(c) => record.sub_cause == SubCause::Environment(c),
        }
    }

    /// A human-readable label for figure axes.
    pub const fn label(self) -> &'static str {
        match self {
            FailureClass::Any => "ANY",
            FailureClass::Root(r) => r.label(),
            FailureClass::Hw(c) => c.label(),
            FailureClass::Sw(c) => c.label(),
            FailureClass::Env(c) => c.label(),
        }
    }

    /// The eight trigger classes of Figures 1-3: the six root causes plus
    /// memory and CPU hardware failures.
    pub const FIGURE1: [FailureClass; 8] = [
        FailureClass::Root(RootCause::Environment),
        FailureClass::Root(RootCause::Hardware),
        FailureClass::Root(RootCause::HumanError),
        FailureClass::Root(RootCause::Network),
        FailureClass::Root(RootCause::Undetermined),
        FailureClass::Root(RootCause::Software),
        FailureClass::Hw(HardwareComponent::MemoryDimm),
        FailureClass::Hw(HardwareComponent::Cpu),
    ];

    /// The four power-problem trigger classes of Figures 10-12: power
    /// outage, power spike, power-supply(-unit) failure and UPS failure.
    pub const POWER_TRIGGERS: [FailureClass; 4] = [
        FailureClass::Env(EnvironmentCause::PowerOutage),
        FailureClass::Env(EnvironmentCause::PowerSpike),
        FailureClass::Hw(HardwareComponent::PowerSupply),
        FailureClass::Env(EnvironmentCause::Ups),
    ];
}

impl fmt::Display for FailureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FailureClass {
    /// The unambiguous wire form used by serialized analysis requests:
    /// `"any"`, or the category prefix and label joined by a colon
    /// (`"root:HW"`, `"hw:Memory"`, `"sw:OS"`, `"env:UPS"`). Unlike
    /// [`FailureClass::label`], every wire form parses back via
    /// [`FromStr`], even where labels collide across categories.
    pub fn wire(self) -> String {
        match self {
            FailureClass::Any => "any".to_owned(),
            FailureClass::Root(r) => format!("root:{}", r.label()),
            FailureClass::Hw(c) => format!("hw:{}", c.label()),
            FailureClass::Sw(c) => format!("sw:{}", c.label()),
            FailureClass::Env(c) => format!("env:{}", c.label()),
        }
    }
}

impl FromStr for FailureClass {
    type Err = ParseCauseError;

    /// Parses the wire form produced by [`FailureClass::wire`]. The
    /// prefix is case-insensitive and a bare root-cause label (e.g.
    /// `"HW"`) is accepted as shorthand for `root:`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.eq_ignore_ascii_case("any") {
            return Ok(FailureClass::Any);
        }
        let Some((prefix, rest)) = s.split_once(':') else {
            // Bare root-cause labels are common in hand-written queries.
            return s.parse().map(FailureClass::Root);
        };
        match prefix.to_ascii_lowercase().as_str() {
            "root" => rest.parse().map(FailureClass::Root),
            "hw" => rest.parse().map(FailureClass::Hw),
            "sw" => rest.parse().map(FailureClass::Sw),
            "env" => rest.parse().map(FailureClass::Env),
            _ => Err(ParseCauseError::new("failure class", s)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(root: RootCause, sub: SubCause) -> FailureRecord {
        FailureRecord::new(
            SystemId::new(20),
            NodeId::new(5),
            Timestamp::from_days(10.0),
            root,
            sub,
        )
    }

    #[test]
    fn failure_class_wire_roundtrip() {
        let mut all: Vec<FailureClass> = vec![FailureClass::Any];
        all.extend(RootCause::ALL.map(FailureClass::Root));
        all.extend(HardwareComponent::ALL.map(FailureClass::Hw));
        all.extend(SoftwareCause::ALL.map(FailureClass::Sw));
        all.extend(EnvironmentCause::ALL.map(FailureClass::Env));
        for class in all {
            assert_eq!(class.wire().parse::<FailureClass>().unwrap(), class);
        }
        // Bare root labels and case-insensitive prefixes are accepted.
        assert_eq!(
            "HW".parse::<FailureClass>().unwrap(),
            FailureClass::Root(RootCause::Hardware)
        );
        assert_eq!(
            "HW:memory".parse::<FailureClass>().unwrap(),
            FailureClass::Hw(HardwareComponent::MemoryDimm)
        );
        assert!("disk:oops".parse::<FailureClass>().is_err());
        assert!("hw:oops".parse::<FailureClass>().is_err());
    }

    #[test]
    fn root_cause_parse_roundtrip() {
        for r in RootCause::ALL {
            assert_eq!(r.label().parse::<RootCause>().unwrap(), r);
        }
        assert_eq!(
            "hardware".parse::<RootCause>().unwrap(),
            RootCause::Hardware
        );
        assert!("disk".parse::<RootCause>().is_err());
    }

    #[test]
    fn hardware_component_parse_roundtrip() {
        for c in HardwareComponent::ALL {
            assert_eq!(c.label().parse::<HardwareComponent>().unwrap(), c);
        }
        assert_eq!(
            "dimm".parse::<HardwareComponent>().unwrap(),
            HardwareComponent::MemoryDimm
        );
    }

    #[test]
    fn software_cause_parse_roundtrip() {
        for c in SoftwareCause::ALL {
            assert_eq!(c.label().parse::<SoftwareCause>().unwrap(), c);
        }
    }

    #[test]
    fn environment_cause_parse_roundtrip() {
        for c in EnvironmentCause::ALL {
            assert_eq!(c.label().parse::<EnvironmentCause>().unwrap(), c);
        }
    }

    #[test]
    fn power_related_environment_causes() {
        assert!(EnvironmentCause::PowerOutage.is_power_related());
        assert!(EnvironmentCause::PowerSpike.is_power_related());
        assert!(EnvironmentCause::Ups.is_power_related());
        assert!(!EnvironmentCause::Chiller.is_power_related());
        assert!(!EnvironmentCause::Other.is_power_related());
    }

    #[test]
    fn sub_cause_consistency() {
        assert!(SubCause::None.consistent_with(RootCause::Network));
        assert!(SubCause::Hardware(HardwareComponent::Fan).consistent_with(RootCause::Hardware));
        assert!(!SubCause::Hardware(HardwareComponent::Fan).consistent_with(RootCause::Software));
        assert!(SubCause::Software(SoftwareCause::Dst).consistent_with(RootCause::Software));
        assert!(
            SubCause::Environment(EnvironmentCause::Ups).consistent_with(RootCause::Environment)
        );
        assert!(!SubCause::Environment(EnvironmentCause::Ups).consistent_with(RootCause::Hardware));
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    #[cfg(debug_assertions)]
    fn inconsistent_record_panics_in_debug() {
        let _ = record(
            RootCause::Network,
            SubCause::Hardware(HardwareComponent::Cpu),
        );
    }

    #[test]
    fn class_matching() {
        let hw = record(
            RootCause::Hardware,
            SubCause::Hardware(HardwareComponent::Cpu),
        );
        let sw = record(RootCause::Software, SubCause::Software(SoftwareCause::Pfs));
        let env = record(
            RootCause::Environment,
            SubCause::Environment(EnvironmentCause::Ups),
        );
        let bare = record(RootCause::Undetermined, SubCause::None);

        assert!(FailureClass::Any.matches(&hw));
        assert!(FailureClass::Any.matches(&bare));
        assert!(FailureClass::Root(RootCause::Hardware).matches(&hw));
        assert!(!FailureClass::Root(RootCause::Hardware).matches(&sw));
        assert!(FailureClass::Hw(HardwareComponent::Cpu).matches(&hw));
        assert!(!FailureClass::Hw(HardwareComponent::MemoryDimm).matches(&hw));
        assert!(FailureClass::Sw(SoftwareCause::Pfs).matches(&sw));
        assert!(FailureClass::Env(EnvironmentCause::Ups).matches(&env));
        assert!(!FailureClass::Env(EnvironmentCause::PowerOutage).matches(&env));
    }

    #[test]
    fn class_without_subcause_only_matches_root() {
        let hw_no_sub = record(RootCause::Hardware, SubCause::None);
        assert!(FailureClass::Root(RootCause::Hardware).matches(&hw_no_sub));
        assert!(!FailureClass::Hw(HardwareComponent::Cpu).matches(&hw_no_sub));
    }

    #[test]
    fn with_downtime_sets_field() {
        let r =
            record(RootCause::Hardware, SubCause::None).with_downtime(Duration::from_hours(4.0));
        assert_eq!(r.downtime, Some(Duration::from_hours(4.0)));
    }

    #[test]
    fn figure1_classes_cover_roots_plus_mem_cpu() {
        assert_eq!(FailureClass::FIGURE1.len(), 8);
        let roots = FailureClass::FIGURE1
            .iter()
            .filter(|c| matches!(c, FailureClass::Root(_)))
            .count();
        assert_eq!(roots, 6);
    }
}
