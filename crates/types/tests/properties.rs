//! Property-based tests for the data model: label round-trips, time
//! arithmetic, layout invariants.

use hpcfail_types::prelude::*;
use hpcfail_types::time::SECONDS_PER_DAY;
use proptest::prelude::*;

fn arb_root() -> impl Strategy<Value = RootCause> {
    prop::sample::select(RootCause::ALL.to_vec())
}

fn arb_hw() -> impl Strategy<Value = HardwareComponent> {
    prop::sample::select(HardwareComponent::ALL.to_vec())
}

fn arb_sw() -> impl Strategy<Value = SoftwareCause> {
    prop::sample::select(SoftwareCause::ALL.to_vec())
}

fn arb_env() -> impl Strategy<Value = EnvironmentCause> {
    prop::sample::select(EnvironmentCause::ALL.to_vec())
}

proptest! {
    #[test]
    fn root_cause_label_roundtrip(root in arb_root()) {
        prop_assert_eq!(root.label().parse::<RootCause>().unwrap(), root);
    }

    #[test]
    fn hw_label_roundtrip(c in arb_hw()) {
        prop_assert_eq!(c.label().parse::<HardwareComponent>().unwrap(), c);
    }

    #[test]
    fn sw_label_roundtrip(c in arb_sw()) {
        prop_assert_eq!(c.label().parse::<SoftwareCause>().unwrap(), c);
    }

    #[test]
    fn env_label_roundtrip(c in arb_env()) {
        prop_assert_eq!(c.label().parse::<EnvironmentCause>().unwrap(), c);
    }

    #[test]
    fn timestamp_day_index_consistent(sec in -1_000_000_000i64..1_000_000_000) {
        let t = Timestamp::from_seconds(sec);
        let day = t.day_index();
        prop_assert!(day * SECONDS_PER_DAY <= sec);
        prop_assert!((day + 1) * SECONDS_PER_DAY > sec);
        // Month index groups 30 consecutive days.
        prop_assert_eq!(t.month_index(), day.div_euclid(30));
    }

    #[test]
    fn duration_arithmetic_consistent(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let ta = Timestamp::from_seconds(a);
        let tb = Timestamp::from_seconds(b);
        prop_assert_eq!(ta + (tb - ta), tb);
        prop_assert_eq!((tb - ta).as_seconds(), b - a);
    }

    #[test]
    fn class_any_matches_everything(node in 0u32..1000, sec in 0i64..1_000_000, root in arb_root()) {
        let r = FailureRecord::new(
            SystemId::new(1),
            NodeId::new(node),
            Timestamp::from_seconds(sec),
            root,
            SubCause::None,
        );
        prop_assert!(FailureClass::Any.matches(&r));
        prop_assert!(FailureClass::Root(root).matches(&r));
        // Exactly one root class matches.
        let matching = RootCause::ALL
            .iter()
            .filter(|&&x| FailureClass::Root(x).matches(&r))
            .count();
        prop_assert_eq!(matching, 1);
    }

    #[test]
    fn subcause_consistency_is_exclusive(hw in arb_hw(), root in arb_root()) {
        let sub = SubCause::Hardware(hw);
        prop_assert_eq!(sub.consistent_with(root), root == RootCause::Hardware);
    }

    #[test]
    fn layout_place_then_lookup(entries in prop::collection::vec((0u32..100, 0u16..20, 1u8..6), 0..60)) {
        let mut layout = MachineLayout::new();
        for &(node, rack, pos) in &entries {
            layout.place(
                NodeId::new(node),
                NodeLocation {
                    rack: RackId::new(rack),
                    position_in_rack: pos,
                    room_row: 0,
                    room_col: rack,
                },
            );
        }
        // Every placed node resolves to its last placement.
        for &(node, _, _) in &entries {
            let last = entries.iter().rev().find(|e| e.0 == node).unwrap();
            prop_assert_eq!(layout.rack_of(NodeId::new(node)), Some(RackId::new(last.1)));
        }
        // Rack membership partitions the placed nodes.
        let total: usize = layout.racks().map(|r| layout.rack_members(r).len()).sum();
        prop_assert_eq!(total, layout.len());
        // Neighbors never contain the node itself.
        for &(node, _, _) in &entries {
            prop_assert!(!layout.rack_neighbors(NodeId::new(node)).contains(&NodeId::new(node)));
        }
    }

    #[test]
    fn job_processor_days_non_negative(
        submit in 0i64..1_000_000,
        wait in 0i64..10_000,
        run in 0i64..1_000_000,
        procs in 1u32..512,
    ) {
        let j = JobRecord {
            system: SystemId::new(8),
            job_id: JobId::new(1),
            user: UserId::new(1),
            submit: Timestamp::from_seconds(submit),
            dispatch: Timestamp::from_seconds(submit + wait),
            end: Timestamp::from_seconds(submit + wait + run),
            procs,
            nodes: vec![NodeId::new(0)],
        };
        prop_assert!(j.processor_days() >= 0.0);
        prop_assert!(j.is_well_formed());
        prop_assert_eq!(j.runtime().as_seconds(), run);
    }
}
