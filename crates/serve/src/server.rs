//! The query server: a fixed pool of worker threads sharing one
//! listener, one engine, one result cache and one coalescer.
//!
//! ## Endpoints
//!
//! | method & path | answer |
//! |---|---|
//! | `GET /healthz` | liveness + trace fingerprint |
//! | `GET /requests` | the request taxonomy (`REQUEST_KINDS`) |
//! | `POST /query` | one [`AnalysisRequest`] as JSON → its result |
//! | `POST /batch` | a JSON array of requests → array of results |
//! | `POST /shutdown` | acknowledges, then stops the server |
//!
//! A `/query` response body is **exactly**
//! `engine.run(&request).to_json().pretty()` — byte-identical to an
//! in-process call — with the serving metadata (`x-cache`,
//! `x-degraded`) in headers so it can never perturb the payload.
//!
//! ## Deadlines
//!
//! Clients may send `x-deadline-ms`. A query that coalesces onto
//! another client's identical in-flight query waits at most that long
//! (default [`ServerConfig::default_deadline_ms`]) before answering
//! `504` with a typed, `degraded: true` error body instead of holding
//! a worker hostage.

use crate::cache::{CacheKey, ResultCache};
use crate::coalesce::{Claim, Coalescer};
use crate::http::{self, Request};
use hpcfail_core::engine::{AnalysisRequest, Engine, REQUEST_KINDS};
use hpcfail_obs::json::Json;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (0 picks a free port).
    pub addr: String,
    /// Worker threads accepting and answering connections.
    pub workers: usize,
    /// Result-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Socket read timeout; an idle keep-alive connection is dropped
    /// after this long.
    pub read_timeout: Duration,
    /// Deadline applied when the client sends no `x-deadline-ms`.
    pub default_deadline_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            cache_capacity: 1024,
            read_timeout: Duration::from_secs(30),
            default_deadline_ms: 10_000,
        }
    }
}

struct Shared {
    engine: Engine,
    cache: ResultCache,
    coalescer: Coalescer,
    shutdown: AtomicBool,
    inflight: AtomicU64,
    default_deadline_ms: u64,
}

/// A running server. Dropping the handle does **not** stop it; call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine the server answers from.
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    /// `true` once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Stops accepting, unblocks the workers and joins them.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Each worker blocks in accept(); poke one connection per
        // worker so every accept call returns and observes the flag.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Binds `config.addr` and spawns the worker pool.
///
/// # Errors
///
/// I/O errors binding the listener.
pub fn spawn(engine: Engine, config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        engine,
        cache: ResultCache::new(config.cache_capacity),
        coalescer: Coalescer::new(),
        shutdown: AtomicBool::new(false),
        inflight: AtomicU64::new(0),
        default_deadline_ms: config.default_deadline_ms,
    });
    let listener = Arc::new(listener);
    let workers = (0..config.workers.max(1))
        .map(|i| {
            let listener = Arc::clone(&listener);
            let shared = Arc::clone(&shared);
            let read_timeout = config.read_timeout;
            std::thread::Builder::new()
                .name(format!("hpcfail-serve-{i}"))
                .spawn(move || worker_loop(&listener, &shared, read_timeout))
                .expect("spawn worker thread")
        })
        .collect();
    Ok(ServerHandle {
        addr,
        shared,
        workers,
    })
}

fn worker_loop(listener: &TcpListener, shared: &Shared, read_timeout: Duration) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_read_timeout(Some(read_timeout));
        let _ = stream.set_nodelay(true);
        serve_connection(stream, shared);
    }
}

fn serve_connection(stream: TcpStream, shared: &Shared) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match http::read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(err) => {
                if let Some((status, reason)) = err.status() {
                    let body = error_body(status, &err.message(), false);
                    let _ = http::write_response(&mut writer, status, reason, &[], &body, true);
                }
                return;
            }
        };
        let close = request.wants_close() || shared.shutdown.load(Ordering::SeqCst);
        hpcfail_obs::counter("serve.requests").inc();
        shared.inflight.fetch_add(1, Ordering::SeqCst);
        hpcfail_obs::gauge("serve.inflight").set(shared.inflight.load(Ordering::SeqCst) as f64);
        let outcome = handle(&request, shared, &mut writer, close);
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        hpcfail_obs::gauge("serve.inflight").set(shared.inflight.load(Ordering::SeqCst) as f64);
        match outcome {
            Ok(()) if !close => continue,
            _ => return,
        }
    }
}

/// Routes one request; `Err` means the connection is unusable.
fn handle(
    request: &Request,
    shared: &Shared,
    writer: &mut impl Write,
    close: bool,
) -> io::Result<()> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let body = Json::obj([
                ("status", Json::Str("ok".to_owned())),
                ("fingerprint", Json::Str(shared.engine.fingerprint_hex())),
                ("systems", Json::Num(shared.engine.trace().len() as f64)),
            ])
            .pretty();
            http::write_response(writer, 200, "OK", &[], &body, close)
        }
        ("GET", "/requests") => {
            let body = Json::obj([(
                "kinds",
                Json::Arr(
                    REQUEST_KINDS
                        .iter()
                        .map(|k| Json::Str((*k).to_owned()))
                        .collect(),
                ),
            )])
            .pretty();
            http::write_response(writer, 200, "OK", &[], &body, close)
        }
        ("POST", "/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            let body = Json::obj([("status", Json::Str("shutting down".to_owned()))]).pretty();
            http::write_response(writer, 200, "OK", &[], &body, true)
        }
        ("POST", "/query") => handle_query(request, shared, writer, close),
        ("POST", "/batch") => handle_batch(request, shared, writer, close),
        (_, "/healthz" | "/requests" | "/shutdown" | "/query" | "/batch") => {
            let body = error_body(405, "method not allowed for this path", false);
            http::write_response(writer, 405, "Method Not Allowed", &[], &body, close)
        }
        _ => {
            let body = error_body(
                404,
                "unknown path; try /healthz, /requests, /query, /batch, /shutdown",
                false,
            );
            http::write_response(writer, 404, "Not Found", &[], &body, close)
        }
    }
}

fn handle_query(
    request: &Request,
    shared: &Shared,
    writer: &mut impl Write,
    close: bool,
) -> io::Result<()> {
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => {
            let body = error_body(400, "request body is not UTF-8", false);
            return http::write_response(writer, 400, "Bad Request", &[], &body, close);
        }
    };
    let parsed = match AnalysisRequest::parse(text) {
        Ok(parsed) => parsed,
        Err(err) => {
            let body = error_body(400, &err.to_string(), false);
            return http::write_response(writer, 400, "Bad Request", &[], &body, close);
        }
    };
    let deadline = Instant::now() + Duration::from_millis(deadline_ms(request, shared));
    match answer(&parsed, shared, deadline) {
        Answer::Fresh(body) => {
            hpcfail_obs::counter("serve.cache.miss").inc();
            http::write_response(writer, 200, "OK", &[("x-cache", "miss")], &body, close)
        }
        Answer::Cached(body) => {
            hpcfail_obs::counter("serve.cache.hit").inc();
            http::write_response(writer, 200, "OK", &[("x-cache", "hit")], &body, close)
        }
        Answer::Coalesced(body) => {
            hpcfail_obs::counter("serve.coalesced").inc();
            http::write_response(writer, 200, "OK", &[("x-cache", "coalesced")], &body, close)
        }
        Answer::Degraded => {
            hpcfail_obs::counter("serve.degraded").inc();
            let body = error_body(
                504,
                "deadline passed while awaiting an identical in-flight query",
                true,
            );
            http::write_response(
                writer,
                504,
                "Gateway Timeout",
                &[("x-degraded", "true")],
                &body,
                close,
            )
        }
        Answer::Failed(message) => {
            let body = error_body(500, &message, false);
            http::write_response(writer, 500, "Internal Server Error", &[], &body, close)
        }
    }
}

fn handle_batch(
    request: &Request,
    shared: &Shared,
    writer: &mut impl Write,
    close: bool,
) -> io::Result<()> {
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => {
            let body = error_body(400, "request body is not UTF-8", false);
            return http::write_response(writer, 400, "Bad Request", &[], &body, close);
        }
    };
    let json = match hpcfail_obs::json::parse(text) {
        Ok(json) => json,
        Err(err) => {
            let body = error_body(400, &format!("malformed JSON: {err}"), false);
            return http::write_response(writer, 400, "Bad Request", &[], &body, close);
        }
    };
    let Some(items) = json.as_arr() else {
        let body = error_body(400, "batch body must be a JSON array of requests", false);
        return http::write_response(writer, 400, "Bad Request", &[], &body, close);
    };
    let mut parsed = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        match AnalysisRequest::from_json(item) {
            Ok(request) => parsed.push(request),
            Err(err) => {
                let body = error_body(400, &format!("batch item {i}: {err}"), false);
                return http::write_response(writer, 400, "Bad Request", &[], &body, close);
            }
        }
    }
    let deadline = Instant::now() + Duration::from_millis(deadline_ms(request, shared));
    let mut bodies = Vec::with_capacity(parsed.len());
    for item in &parsed {
        match answer(item, shared, deadline) {
            Answer::Fresh(body) => {
                hpcfail_obs::counter("serve.cache.miss").inc();
                bodies.push(Json::Str((*body).clone()));
            }
            Answer::Cached(body) => {
                hpcfail_obs::counter("serve.cache.hit").inc();
                bodies.push(Json::Str((*body).clone()));
            }
            Answer::Coalesced(body) => {
                hpcfail_obs::counter("serve.coalesced").inc();
                bodies.push(Json::Str((*body).clone()));
            }
            Answer::Degraded => {
                hpcfail_obs::counter("serve.degraded").inc();
                let body = error_body(
                    504,
                    "deadline passed while awaiting an identical in-flight query",
                    true,
                );
                return http::write_response(
                    writer,
                    504,
                    "Gateway Timeout",
                    &[("x-degraded", "true")],
                    &body,
                    close,
                );
            }
            Answer::Failed(message) => {
                let body = error_body(500, &message, false);
                return http::write_response(
                    writer,
                    500,
                    "Internal Server Error",
                    &[],
                    &body,
                    close,
                );
            }
        }
    }
    // Each element is the exact /query body for that request, embedded
    // as a JSON string so per-query byte-identity survives batching.
    let body = Json::obj([("results", Json::Arr(bodies))]).pretty();
    http::write_response(writer, 200, "OK", &[], &body, close)
}

enum Answer {
    /// Computed by this request.
    Fresh(Arc<String>),
    /// Served from the result cache.
    Cached(Arc<String>),
    /// Shared from another client's identical in-flight query.
    Coalesced(Arc<String>),
    /// Deadline expired while waiting on the in-flight leader.
    Degraded,
    /// The query panicked; the message is sanitized.
    Failed(String),
}

fn answer(request: &AnalysisRequest, shared: &Shared, deadline: Instant) -> Answer {
    let key: CacheKey = (shared.engine.fingerprint(), request.canonical());
    if let Some(body) = shared.cache.get(&key) {
        return Answer::Cached(body);
    }
    match shared.coalescer.claim(&key) {
        Claim::Leader(guard) => {
            let span_name = format!("serve.query.{}", request.kind());
            let _span = hpcfail_obs::span(&span_name);
            let computed = catch_unwind(AssertUnwindSafe(|| {
                Arc::new(shared.engine.run(request).to_json().pretty())
            }));
            match computed {
                Ok(body) => {
                    shared.cache.put(key, Arc::clone(&body));
                    shared.coalescer.complete(guard, Arc::clone(&body));
                    Answer::Fresh(body)
                }
                Err(_) => {
                    shared.coalescer.abandon(guard);
                    Answer::Failed(format!(
                        "analysis {} panicked; see server logs",
                        request.kind()
                    ))
                }
            }
        }
        Claim::Follower(flight) => match flight.wait(deadline) {
            Some(body) => Answer::Coalesced(body),
            None => Answer::Degraded,
        },
    }
}

fn deadline_ms(request: &Request, shared: &Shared) -> u64 {
    request
        .header("x-deadline-ms")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(shared.default_deadline_ms)
        .max(1)
}

/// The uniform typed error body.
fn error_body(status: u16, message: &str, degraded: bool) -> String {
    Json::obj([(
        "error",
        Json::obj([
            ("status", Json::Num(f64::from(status))),
            ("message", Json::Str(message.to_owned())),
            ("degraded", Json::Bool(degraded)),
        ]),
    )])
    .pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bodies_are_typed_json() {
        let body = error_body(400, "nope", false);
        let json = hpcfail_obs::json::parse(&body).expect("valid JSON");
        assert_eq!(
            json.get("error")
                .and_then(|e| e.get("status"))
                .and_then(Json::as_u64),
            Some(400)
        );
        assert_eq!(
            json.get("error")
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str),
            Some("nope")
        );
    }
}
