//! The query server: a fixed pool of worker threads sharing one
//! listener, one trace registry, one result cache and one coalescer.
//!
//! ## Endpoints
//!
//! The full table lives in [`routes`]; the versioned surface is:
//!
//! | method & path | answer |
//! |---|---|
//! | `GET /v1/healthz` | liveness + registry + SLO standings |
//! | `GET /v1/metrics` | Prometheus text exposition of the live registry |
//! | `GET /v1/requests` | the request taxonomy (`REQUEST_KINDS`) |
//! | `GET /v1/traces` | every registered trace's summary row |
//! | `POST /v1/traces/{name}` | upload CSV or `.hpcsnap` into a slot |
//! | `GET /v1/traces/{name}` | one trace's summary |
//! | `DELETE /v1/traces/{name}` | evict a trace |
//! | `POST /v1/traces/{name}/query` | one [`AnalysisRequest`] → its result |
//! | `POST /v1/traces/{name}/batch` | a JSON array of requests → results |
//! | `POST /v1/shutdown` | acknowledges, then stops the server |
//!
//! The legacy unversioned endpoints (`/query`, `/batch`, `/healthz`,
//! `/metrics`, `/requests`, `/shutdown`) keep answering — analysis
//! runs against the `default` trace — with `x-api-deprecated: true`
//! on every response and a `"deprecation": true` field in the
//! extensible control bodies (never in `/query`/`/batch` payloads,
//! whose bytes are contractual).
//!
//! A query response body is **exactly**
//! `engine.run(&request).to_json().pretty()` — byte-identical to an
//! in-process call against that trace's pinned epoch — with the
//! serving metadata (`x-cache`, `x-degraded`, `x-trace-id`) in headers
//! so it can never perturb the payload. Re-uploading a name mid-query
//! is safe: the query finishes against the epoch it resolved.
//!
//! ## Request-scoped observability
//!
//! Every request runs under a trace (`hpcfail_obs::start_trace`): the
//! trace id is echoed in the `x-trace-id` response header and, when
//! configured, in the JSONL access log. Sending `x-trace: 1` opts the
//! response into a wrapped body `{"result": <exact body as a JSON
//! string>, "trace": <span tree>, "trace_id": ...}` — the original
//! bytes survive verbatim inside the `result` string (the same idiom
//! `/batch` uses). Per request the server also records per-kind
//! lifetime histograms, sliding-window histograms and [`SloTracker`]
//! windows, all of which `GET /metrics` exports.
//!
//! ## Deadlines
//!
//! Clients may send `x-deadline-ms`. A query that coalesces onto
//! another client's identical in-flight query waits at most that long
//! (default [`ServerConfig::default_deadline_ms`]) before answering
//! `504` with a typed, `degraded: true` error body instead of holding
//! a worker hostage.

use crate::accesslog::{AccessEntry, AccessLog, DEFAULT_MAX_BYTES};
use crate::admission::{AdmissionConfig, AdmissionGate, CostClass, ShedReason};
use crate::cache::{CacheKey, ResultCache};
use crate::chaos::{ChaosAction, ChaosConfig, ChaosEngine, ChaosPoint};
use crate::coalesce::{Claim, Coalescer};
use crate::http::{self, Request};
use crate::metrics;
use crate::registry::{
    self, ResolvedTrace, TraceRegistry, TraceSource, TraceSummary, DEFAULT_TRACE,
};
use crate::routes::{self, Endpoint, Routed};
use crate::slo::{SloPolicy, SloTracker};
use hpcfail_core::engine::{AnalysisRequest, Engine, REQUEST_KINDS};
use hpcfail_obs::json::Json;
use hpcfail_obs::TraceRecording;
use hpcfail_store::ingest::IngestPolicy;
use hpcfail_store::lanl::{assemble_trace, read_lanl_failures_with, LanlImportOptions};
use hpcfail_store::snapshot::{decode_snapshot, SNAPSHOT_MAGIC};
use hpcfail_store::trace::Trace;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (0 picks a free port).
    pub addr: String,
    /// Worker threads accepting and answering connections.
    pub workers: usize,
    /// Result-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Socket read timeout; an idle keep-alive connection is dropped
    /// after this long.
    pub read_timeout: Duration,
    /// Deadline applied when the client sends no `x-deadline-ms`.
    pub default_deadline_ms: u64,
    /// Registry warm-residency budget in bytes; 0 = unlimited. Over
    /// budget, least-recently-queried traces demote to cold snapshots.
    pub max_resident_bytes: u64,
    /// Write a JSONL access log here (size-capped, one `.1` rotation).
    pub access_log: Option<PathBuf>,
    /// Rotation threshold for the access log, bytes.
    pub access_log_max_bytes: u64,
    /// The SLO budgets `/healthz` and `/metrics` evaluate against.
    pub slo: SloPolicy,
    /// The admission gate in front of analysis and upload endpoints
    /// (`/healthz`, `/metrics`, `/requests` and `/shutdown` never pass
    /// through it). The default gate is disabled (`max_inflight: 0`).
    pub admission: AdmissionConfig,
    /// Fault injection: a seeded chaos spec (`--chaos spec.json`)
    /// deciding which arrivals fault at which points.
    pub chaos: Option<ChaosConfig>,
    /// Fault injection: panic inside the handler for this analysis
    /// kind, to exercise the catch-unwind → 500 path (the engine
    /// itself never panics on well-formed requests).
    pub inject_panic_kind: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            cache_capacity: 1024,
            read_timeout: Duration::from_secs(30),
            default_deadline_ms: 10_000,
            max_resident_bytes: 0,
            access_log: None,
            access_log_max_bytes: DEFAULT_MAX_BYTES,
            slo: SloPolicy::default(),
            admission: AdmissionConfig::default(),
            chaos: None,
            inject_panic_kind: None,
        }
    }
}

struct Shared {
    registry: Arc<TraceRegistry>,
    cache: ResultCache,
    coalescer: Coalescer,
    shutdown: AtomicBool,
    inflight: AtomicU64,
    default_deadline_ms: u64,
    slo: SloTracker,
    gate: AdmissionGate,
    chaos: Option<ChaosEngine>,
    access_log: Option<AccessLog>,
    inject_panic_kind: Option<String>,
}

/// A running server. Dropping the handle does **not** stop it; call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The trace registry the server answers from.
    pub fn registry(&self) -> &Arc<TraceRegistry> {
        &self.shared.registry
    }

    /// The `default` trace's current engine, when one is registered.
    pub fn engine(&self) -> Option<Arc<Engine>> {
        self.shared
            .registry
            .resolve(DEFAULT_TRACE)
            .map(|resolved| resolved.engine)
    }

    /// Requests currently being handled (the live `serve_inflight`
    /// gauge).
    pub fn inflight(&self) -> u64 {
        self.shared.inflight.load(Ordering::SeqCst)
    }

    /// `true` once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// The admission gate (live occupancy and shed counts).
    pub fn admission(&self) -> &AdmissionGate {
        &self.shared.gate
    }

    /// Stops accepting, unblocks the workers and joins them. Queued
    /// admissions shed with a typed `503 draining`; admitted requests
    /// (in-progress uploads included) finish first.
    pub fn shutdown(mut self) {
        self.shared.gate.begin_drain();
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Each worker blocks in accept(); poke one connection per
        // worker so every accept call returns and observes the flag.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Binds `config.addr` and spawns the worker pool with `engine`
/// registered as the `default` trace.
///
/// # Errors
///
/// I/O errors binding the listener or opening the access log.
pub fn spawn(engine: Engine, config: ServerConfig) -> io::Result<ServerHandle> {
    let registry = TraceRegistry::new(config.max_resident_bytes);
    registry.insert_engine(DEFAULT_TRACE, Arc::new(engine), TraceSource::Boot);
    spawn_with_registry(registry, config)
}

/// Binds `config.addr` and spawns the worker pool over an existing
/// registry — empty (`--empty`: every trace arrives by upload) or
/// pre-seeded with any number of named traces.
///
/// # Errors
///
/// I/O errors binding the listener or opening the access log.
pub fn spawn_with_registry(
    registry: TraceRegistry,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let access_log = match &config.access_log {
        Some(path) => Some(AccessLog::open(path, config.access_log_max_bytes)?),
        None => None,
    };
    let shared = Arc::new(Shared {
        registry: Arc::new(registry),
        cache: ResultCache::new(config.cache_capacity),
        coalescer: Coalescer::new(),
        shutdown: AtomicBool::new(false),
        inflight: AtomicU64::new(0),
        default_deadline_ms: config.default_deadline_ms,
        slo: SloTracker::new(config.slo),
        gate: AdmissionGate::new(config.admission),
        chaos: config.chaos.clone().map(ChaosEngine::new),
        access_log,
        inject_panic_kind: config.inject_panic_kind.clone(),
    });
    let listener = Arc::new(listener);
    let workers = (0..config.workers.max(1))
        .map(|i| {
            let listener = Arc::clone(&listener);
            let shared = Arc::clone(&shared);
            let read_timeout = config.read_timeout;
            std::thread::Builder::new()
                .name(format!("hpcfail-serve-{i}"))
                .spawn(move || worker_loop(&listener, &shared, read_timeout))
                .expect("spawn worker thread")
        })
        .collect();
    Ok(ServerHandle {
        addr,
        shared,
        workers,
    })
}

fn worker_loop(listener: &TcpListener, shared: &Shared, read_timeout: Duration) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Some(chaos) = &shared.chaos {
            match chaos.decide(ChaosPoint::Accept) {
                Some(ChaosAction::Delay(delay)) => std::thread::sleep(delay),
                Some(ChaosAction::Drop) => {
                    drop(stream); // connection dies before any byte is read
                    continue;
                }
                _ => {}
            }
        }
        let _ = stream.set_read_timeout(Some(read_timeout));
        let _ = stream.set_nodelay(true);
        serve_connection(stream, shared);
    }
}

fn serve_connection(stream: TcpStream, shared: &Shared) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        // Only trace uploads get the enlarged body limit; everything
        // else keeps the original cap with its immediate typed 413.
        let limit = |method: &str, path: &str| match routes::resolve(method, path) {
            Routed::Matched(m) if m.endpoint == Endpoint::TraceUpload => http::MAX_UPLOAD_BODY,
            _ => http::MAX_BODY,
        };
        let request = match http::read_request_with_limit(&mut reader, limit) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(err) => {
                if let Some((status, reason)) = err.status() {
                    // Even unparseable traffic gets a trace id and
                    // exactly one access-log line.
                    let trace_hex = format!("{:016x}", hpcfail_obs::trace::next_trace_id());
                    let body = error_body(status, &err.message(), false);
                    let _ = http::write_response(
                        &mut writer,
                        status,
                        reason,
                        &[("x-trace-id", &trace_hex)],
                        &body,
                        true,
                    );
                    if let Some(log) = &shared.access_log {
                        log.log(&AccessEntry {
                            trace_id: trace_hex,
                            method: "-".to_owned(),
                            path: "-".to_owned(),
                            kind: "http-error".to_owned(),
                            status,
                            latency_us: 0,
                            cache: "-".to_owned(),
                            deadline_ms: shared.default_deadline_ms,
                            bytes_out: body.len() as u64,
                            shed: "-".to_owned(),
                        });
                    }
                }
                return;
            }
        };
        let close = request.wants_close() || shared.shutdown.load(Ordering::SeqCst);
        match respond(&request, shared, &mut writer, close) {
            Ok(true) if !close => continue,
            _ => return,
        }
    }
}

/// Decrements the in-flight count (and gauge) however the handler
/// exits.
struct InflightGuard<'a> {
    shared: &'a Shared,
}

impl<'a> InflightGuard<'a> {
    fn enter(shared: &'a Shared) -> InflightGuard<'a> {
        shared.inflight.fetch_add(1, Ordering::SeqCst);
        hpcfail_obs::gauge("serve.inflight").set(shared.inflight.load(Ordering::SeqCst) as f64);
        InflightGuard { shared }
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.shared.inflight.fetch_sub(1, Ordering::SeqCst);
        hpcfail_obs::gauge("serve.inflight")
            .set(self.shared.inflight.load(Ordering::SeqCst) as f64);
    }
}

/// One routed answer, before the central writer adds tracing headers,
/// telemetry and the optional `x-trace` body wrap.
struct Reply {
    status: u16,
    reason: &'static str,
    /// Endpoint-specific headers (e.g. `x-degraded`, `content-type`).
    headers: Vec<(&'static str, String)>,
    body: String,
    /// The kind label for metrics, SLO windows and the access log.
    kind: String,
    /// Cache outcome, when caching applied.
    cache: Option<&'static str>,
    /// The shed reason label, when admission rejected the request.
    shed: Option<&'static str>,
    /// Close the connection after this reply (shutdown).
    force_close: bool,
}

impl Reply {
    fn ok(body: String, kind: &str) -> Reply {
        Reply {
            status: 200,
            reason: "OK",
            headers: Vec::new(),
            body,
            kind: kind.to_owned(),
            cache: None,
            shed: None,
            force_close: false,
        }
    }

    fn error(
        status: u16,
        reason: &'static str,
        message: &str,
        degraded: bool,
        kind: &str,
    ) -> Reply {
        Reply {
            status,
            reason,
            headers: Vec::new(),
            body: error_body(status, message, degraded),
            kind: kind.to_owned(),
            cache: None,
            shed: None,
            force_close: false,
        }
    }

    /// The typed shed answer: status from the reason, `retry-after`
    /// (whole seconds, at least 1) + `x-retry-after-ms` (exact) +
    /// `x-shed` headers, and the shed label in the access log.
    fn shed(reason: ShedReason, retry_after_ms: u64, kind: &str) -> Reply {
        let (status, phrase) = reason.status();
        let mut reply = Reply::error(status, phrase, reason.message(), false, kind);
        reply.headers.push((
            "retry-after",
            retry_after_ms.div_ceil(1_000).max(1).to_string(),
        ));
        reply
            .headers
            .push(("x-retry-after-ms", retry_after_ms.to_string()));
        reply.headers.push(("x-shed", reason.label().to_owned()));
        reply.shed = Some(reason.label());
        reply
    }
}

/// Handles one parsed request end to end: trace, route (panic-safe),
/// telemetry, response write, access log. Returns `Ok(keep_alive)`.
fn respond(
    request: &Request,
    shared: &Shared,
    writer: &mut impl Write,
    close: bool,
) -> io::Result<bool> {
    let started = Instant::now();
    hpcfail_obs::counter("serve.requests").inc();
    let trace = hpcfail_obs::start_trace("serve.request");
    trace.attr("method", &request.method);
    trace.attr("path", &request.path);
    let trace_hex = trace.trace_id_hex();

    let routed = routes::resolve(&request.method, &request.path);
    let legacy = matches!(&routed, Routed::Matched(m) if m.legacy);
    let analysis = matches!(&routed, Routed::Matched(m) if m.endpoint.is_analysis());

    let inflight = InflightGuard::enter(shared);
    let reply =
        catch_unwind(AssertUnwindSafe(|| route(request, &routed, shared))).unwrap_or_else(|_| {
            Reply::error(
                500,
                "Internal Server Error",
                "handler panicked; see server logs",
                false,
                "panic",
            )
        });
    drop(inflight);

    trace.attr("kind", &reply.kind);
    trace.attr("status", &reply.status.to_string());
    if let Some(cache) = reply.cache {
        trace.attr("cache", cache);
    }
    let recording = trace.finish();
    let latency_ns = started.elapsed().as_nanos() as u64;
    record_telemetry(shared, &reply.kind, reply.status, latency_ns);

    let Reply {
        status,
        reason,
        headers: reply_headers,
        body: raw_body,
        kind,
        cache,
        shed,
        force_close,
    } = reply;

    // `x-trace: 1` wraps the body with the span tree; the exact
    // original bytes survive as the `result` string. Endpoints that
    // answer non-JSON (only /metrics) are never wrapped.
    let custom_content_type = reply_headers
        .iter()
        .any(|(n, _)| n.eq_ignore_ascii_case("content-type"));
    let traced = !custom_content_type
        && request
            .header("x-trace")
            .is_some_and(|v| v == "1" || v.eq_ignore_ascii_case("true"));
    let body = if traced {
        wrap_traced(raw_body, &trace_hex, recording.as_ref())
    } else {
        raw_body
    };

    let mut headers: Vec<(&str, &str)> = vec![("x-trace-id", &trace_hex)];
    // Every legacy-surface response carries the deprecation header;
    // analysis bodies stay byte-identical, so the signal lives here.
    if legacy {
        headers.push(("x-api-deprecated", "true"));
    }
    if let Some(cache) = cache {
        headers.push(("x-cache", cache));
    }
    for (name, value) in &reply_headers {
        headers.push((name, value));
    }
    let mut close = close || force_close;

    // The respond chaos point applies only to analysis traffic —
    // injecting into /healthz or /metrics would blind the observer.
    let mut dropped = false;
    if analysis {
        if let Some(chaos) = &shared.chaos {
            match chaos.decide(ChaosPoint::Respond) {
                Some(ChaosAction::Delay(delay)) => std::thread::sleep(delay),
                Some(ChaosAction::Drop) => {
                    // Deliberately untyped: the bytes never go out, but
                    // the request still gets its one access-log line.
                    dropped = true;
                    close = true;
                }
                _ => {}
            }
        }
    }
    let result = if dropped {
        Ok(())
    } else {
        http::write_response(writer, status, reason, &headers, &body, close)
    };

    if let Some(log) = &shared.access_log {
        log.log(&AccessEntry {
            trace_id: trace_hex,
            method: request.method.clone(),
            path: request.path.clone(),
            kind,
            status,
            latency_us: latency_ns / 1_000,
            cache: cache.unwrap_or("-").to_owned(),
            deadline_ms: deadline_ms(request, shared),
            bytes_out: if dropped { 0 } else { body.len() as u64 },
            shed: shed.unwrap_or("-").to_owned(),
        });
    }
    result.map(|()| !close)
}

fn wrap_traced(body: String, trace_hex: &str, recording: Option<&TraceRecording>) -> String {
    let mut fields = vec![
        ("result", Json::Str(body)),
        ("trace_id", Json::Str(trace_hex.to_owned())),
    ];
    if let Some(recording) = recording {
        fields.push(("trace", recording.to_json()));
    }
    Json::obj(fields).pretty()
}

fn record_telemetry(shared: &Shared, kind: &str, status: u16, latency_ns: u64) {
    hpcfail_obs::counter(&format!("serve.status.{status}")).inc();
    hpcfail_obs::counter(&format!("serve.kind.{kind}.requests")).inc();
    hpcfail_obs::histogram(&format!("serve.latency_ns.{kind}")).record(latency_ns);
    hpcfail_obs::window(&format!("serve.window.latency_ns.{kind}")).record(latency_ns);
    shared.slo.record(kind, latency_ns, status >= 500);
}

/// Dispatches one resolved route to its endpoint handler.
fn route(request: &Request, routed: &Routed, shared: &Shared) -> Reply {
    let matched = match routed {
        Routed::Matched(matched) => matched,
        Routed::MethodNotAllowed(allowed) => {
            let mut reply = Reply::error(
                405,
                "Method Not Allowed",
                &format!(
                    "method not allowed for this path (allow: {})",
                    allowed.join(", ")
                ),
                false,
                "other",
            );
            reply.headers.push(("allow", allowed.join(", ")));
            return reply;
        }
        Routed::NotFound => {
            return Reply::error(404, "Not Found", routes::KNOWN_PATHS_HINT, false, "other")
        }
    };
    let trace_name = matched.trace.as_deref().unwrap_or(DEFAULT_TRACE);
    match matched.endpoint {
        Endpoint::Healthz => handle_healthz(shared, matched.legacy),
        Endpoint::Metrics => {
            let body = metrics::render(
                &hpcfail_obs::snapshot(),
                &shared.slo.report(),
                shared.inflight.load(Ordering::SeqCst),
            );
            let mut reply = Reply::ok(body, "metrics");
            reply.headers.push((
                "content-type",
                "text/plain; version=0.0.4; charset=utf-8".to_owned(),
            ));
            reply
        }
        Endpoint::Requests => {
            let mut fields = vec![(
                "kinds",
                Json::Arr(
                    REQUEST_KINDS
                        .iter()
                        .map(|k| Json::Str((*k).to_owned()))
                        .collect(),
                ),
            )];
            if matched.legacy {
                fields.push(("deprecation", Json::Bool(true)));
            }
            Reply::ok(Json::obj(fields).pretty(), "requests")
        }
        Endpoint::Shutdown => {
            shared.gate.begin_drain();
            shared.shutdown.store(true, Ordering::SeqCst);
            let mut fields = vec![("status", Json::Str("shutting down".to_owned()))];
            if matched.legacy {
                fields.push(("deprecation", Json::Bool(true)));
            }
            let mut reply = Reply::ok(Json::obj(fields).pretty(), "shutdown");
            reply.force_close = true;
            reply
        }
        Endpoint::Query => handle_query(request, trace_name, shared),
        Endpoint::Batch => handle_batch(request, trace_name, shared),
        Endpoint::TraceList => {
            let rows = shared
                .registry
                .list()
                .iter()
                .map(TraceSummary::to_json)
                .collect();
            let body = Json::obj([
                ("traces", Json::Arr(rows)),
                (
                    "resident_bytes",
                    Json::Num(shared.registry.resident_bytes() as f64),
                ),
                (
                    "max_resident_bytes",
                    Json::Num(shared.registry.max_resident_bytes() as f64),
                ),
            ])
            .pretty();
            Reply::ok(body, "traces")
        }
        Endpoint::TraceUpload => handle_upload(request, trace_name, shared),
        Endpoint::TraceShow => match shared.registry.summary(trace_name) {
            Some(summary) => {
                Reply::ok(Json::obj([("trace", summary.to_json())]).pretty(), "traces")
            }
            None => Reply::error(
                404,
                "Not Found",
                &format!("no trace named {trace_name:?} is registered"),
                false,
                "traces",
            ),
        },
        Endpoint::TraceDelete => match shared.registry.remove(trace_name) {
            Some(summary) => Reply::ok(
                Json::obj([("evicted", summary.to_json())]).pretty(),
                "traces",
            ),
            None => Reply::error(
                404,
                "Not Found",
                &format!("no trace named {trace_name:?} is registered"),
                false,
                "traces",
            ),
        },
    }
}

fn handle_healthz(shared: &Shared, legacy: bool) -> Reply {
    let slo = shared.slo.report();
    let mut fields = vec![(
        "status",
        Json::Str(if slo.healthy { "ok" } else { "degraded" }.to_owned()),
    )];
    // The default trace's identity stays at the top level so existing
    // health checks keep working across the registry migration.
    if let Some(default) = shared.registry.summary(DEFAULT_TRACE) {
        fields.push((
            "fingerprint",
            Json::Str(format!("{:016x}", default.fingerprint)),
        ));
        fields.push(("systems", Json::Num(default.systems as f64)));
    }
    fields.push(("traces", Json::Num(shared.registry.len() as f64)));
    fields.push((
        "resident_bytes",
        Json::Num(shared.registry.resident_bytes() as f64),
    ));
    fields.push(("slo", slo.to_json()));
    fields.push(("admission", shared.gate.to_json()));
    if legacy {
        fields.push(("deprecation", Json::Bool(true)));
    }
    Reply::ok(Json::obj(fields).pretty(), "healthz")
}

/// Parses and registers one uploaded trace body. Uploads are admitted
/// as [`CostClass::Expensive`] work *before* the heavy parse: a
/// draining server sheds them with a typed 503 instead of accepting
/// data it will never serve, and an admitted upload holds its permit so
/// shutdown waits for it to land (or cancel) cleanly.
fn handle_upload(request: &Request, name: &str, shared: &Shared) -> Reply {
    if !registry::valid_name(name) {
        return Reply::error(
            400,
            "Bad Request",
            "invalid trace name: want 1-64 ASCII alphanumeric, '_', '-' or '.' characters, \
             not starting with a dot",
            false,
            "upload",
        );
    }
    let deadline = Instant::now() + Duration::from_millis(deadline_ms(request, shared));
    if let Some(reply) = chaos_admission(shared, CostClass::Expensive, "upload") {
        return reply;
    }
    let _permit = match shared.gate.admit(CostClass::Expensive, deadline) {
        Ok(permit) => permit,
        Err(reason) => return Reply::shed(reason, shared.gate.config().retry_after_ms, "upload"),
    };
    if let Some(reply) = chaos_engine_point(shared, "upload") {
        return reply;
    }
    if request.body.is_empty() {
        return Reply::error(
            400,
            "Bad Request",
            "empty upload body (expected LANL-style CSV or a .hpcsnap snapshot)",
            false,
            "upload",
        );
    }
    let (trace, source, ingest) = if request.body.starts_with(SNAPSHOT_MAGIC) {
        match decode_snapshot(&request.body) {
            Ok(trace) => (trace, TraceSource::Snapshot, None),
            Err(err) => {
                return Reply::error(
                    400,
                    "Bad Request",
                    &format!("malformed snapshot: {err}"),
                    false,
                    "upload",
                )
            }
        }
    } else {
        match parse_csv_upload(request, name) {
            Ok((trace, ingest)) => (trace, TraceSource::Csv, Some(ingest)),
            Err(reply) => return *reply,
        }
    };
    let summary = shared.registry.insert(name, trace, source);
    let mut fields = vec![("trace", summary.to_json())];
    if let Some(ingest) = ingest {
        fields.push(("ingest", ingest));
    }
    Reply::ok(Json::obj(fields).pretty(), "upload")
}

/// Runs a CSV upload body through the quarantine/audit ingest
/// machinery under the client's `x-ingest-policy` (default `lenient`).
fn parse_csv_upload(request: &Request, name: &str) -> Result<(Trace, Json), Box<Reply>> {
    let policy = match request.header("x-ingest-policy") {
        Some(raw) => raw.parse::<IngestPolicy>().map_err(|message| {
            Box::new(Reply::error(400, "Bad Request", &message, false, "upload"))
        })?,
        None => IngestPolicy::Lenient,
    };
    let file = format!("upload:{name}");
    let read = read_lanl_failures_with(
        request.body.as_slice(),
        &file,
        LanlImportOptions::default(),
        policy,
    )
    .map_err(|err| {
        Box::new(Reply::error(
            400,
            "Bad Request",
            &format!("CSV rejected: {err}"),
            false,
            "upload",
        ))
    })?;
    if read.records.is_empty() {
        return Err(Box::new(Reply::error(
            400,
            "Bad Request",
            &format!(
                "no usable rows ({} quarantined); nothing to register",
                read.quarantined.len()
            ),
            false,
            "upload",
        )));
    }
    let ingest = Json::obj([
        ("rows_ok", Json::Num(read.records.len() as f64)),
        ("quarantined", Json::Num(read.quarantined.len() as f64)),
        ("defaulted_fields", Json::Num(read.defaulted_fields as f64)),
        ("duplicates", Json::Num(read.duplicates as f64)),
        ("policy", Json::Str(policy_label(policy).to_owned())),
    ]);
    Ok((assemble_trace(read.records, &[]), ingest))
}

fn policy_label(policy: IngestPolicy) -> &'static str {
    match policy {
        IngestPolicy::Strict => "strict",
        IngestPolicy::Lenient => "lenient",
        IngestPolicy::BestEffort => "best-effort",
    }
}

fn handle_query(request: &Request, trace_name: &str, shared: &Shared) -> Reply {
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => {
            return Reply::error(
                400,
                "Bad Request",
                "request body is not UTF-8",
                false,
                "query",
            )
        }
    };
    let parsed = match AnalysisRequest::parse(text) {
        Ok(parsed) => parsed,
        Err(err) => {
            return Reply::error(400, "Bad Request", &err.to_string(), false, "query");
        }
    };
    let kind = parsed.kind();
    if shared.inject_panic_kind.as_deref() == Some(kind) {
        panic!("injected panic for analysis kind {kind}");
    }
    // Resolving pins this request to the name's current epoch: the
    // engine Arc stays alive through the whole answer even if an
    // upload swaps or an eviction demotes the slot mid-flight.
    let Some(resolved) = shared.registry.resolve(trace_name) else {
        return Reply::error(
            404,
            "Not Found",
            &format!("no trace named {trace_name:?} is registered"),
            false,
            kind,
        );
    };
    hpcfail_obs::counter(&format!("serve.trace.{trace_name}.requests")).inc();
    let deadline = Instant::now() + Duration::from_millis(deadline_ms(request, shared));

    // A warm cache entry makes the request cheap: admission peeks at
    // the cache (bumping recency is fine — the hit is about to serve).
    let key: CacheKey = (
        trace_name.to_owned(),
        resolved.fingerprint,
        parsed.canonical(),
    );
    let class = if shared.cache.get(&key).is_some() {
        CostClass::Cheap
    } else {
        CostClass::Expensive
    };
    if let Some(reply) = chaos_admission(shared, class, kind) {
        return reply;
    }
    let _permit = match shared.gate.admit(class, deadline) {
        Ok(permit) => permit,
        Err(reason) => return Reply::shed(reason, shared.gate.config().retry_after_ms, kind),
    };
    if let Some(reply) = chaos_engine_point(shared, kind) {
        return reply;
    }
    match answer(&parsed, trace_name, &resolved, shared, deadline) {
        Answer::Fresh(body) => {
            hpcfail_obs::counter("serve.cache.miss").inc();
            let mut reply = Reply::ok((*body).clone(), kind);
            reply.cache = Some("miss");
            reply
        }
        Answer::Cached(body) => {
            hpcfail_obs::counter("serve.cache.hit").inc();
            let mut reply = Reply::ok((*body).clone(), kind);
            reply.cache = Some("hit");
            reply
        }
        Answer::Coalesced(body) => {
            hpcfail_obs::counter("serve.coalesced").inc();
            let mut reply = Reply::ok((*body).clone(), kind);
            reply.cache = Some("coalesced");
            reply
        }
        Answer::Degraded => {
            hpcfail_obs::counter("serve.degraded").inc();
            let mut reply = Reply::error(
                504,
                "Gateway Timeout",
                "deadline passed while awaiting an identical in-flight query",
                true,
                kind,
            );
            reply.headers.push(("x-degraded", "true".to_owned()));
            reply
        }
        Answer::Failed(message) => {
            Reply::error(500, "Internal Server Error", &message, false, kind)
        }
    }
}

fn handle_batch(request: &Request, trace_name: &str, shared: &Shared) -> Reply {
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => {
            return Reply::error(
                400,
                "Bad Request",
                "request body is not UTF-8",
                false,
                "batch",
            )
        }
    };
    let json = match hpcfail_obs::json::parse(text) {
        Ok(json) => json,
        Err(err) => {
            return Reply::error(
                400,
                "Bad Request",
                &format!("malformed JSON: {err}"),
                false,
                "batch",
            );
        }
    };
    let Some(items) = json.as_arr() else {
        return Reply::error(
            400,
            "Bad Request",
            "batch body must be a JSON array of requests",
            false,
            "batch",
        );
    };
    let mut parsed = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        match AnalysisRequest::from_json(item) {
            Ok(request) => parsed.push(request),
            Err(err) => {
                return Reply::error(
                    400,
                    "Bad Request",
                    &format!("batch item {i}: {err}"),
                    false,
                    "batch",
                );
            }
        }
    }
    // One resolution pins the whole batch to one epoch: every element
    // answers against the same snapshot of the data, even if an upload
    // swaps the name between items.
    let Some(resolved) = shared.registry.resolve(trace_name) else {
        return Reply::error(
            404,
            "Not Found",
            &format!("no trace named {trace_name:?} is registered"),
            false,
            "batch",
        );
    };
    hpcfail_obs::counter(&format!("serve.trace.{trace_name}.requests")).inc();
    let deadline = Instant::now() + Duration::from_millis(deadline_ms(request, shared));
    if let Some(reply) = chaos_admission(shared, CostClass::Batch, "batch") {
        return reply;
    }
    // One admission covers the whole batch: it is one unit of work for
    // brownout purposes, whatever its length.
    let _permit = match shared.gate.admit(CostClass::Batch, deadline) {
        Ok(permit) => permit,
        Err(reason) => return Reply::shed(reason, shared.gate.config().retry_after_ms, "batch"),
    };
    if let Some(reply) = chaos_engine_point(shared, "batch") {
        return reply;
    }
    let mut bodies = Vec::with_capacity(parsed.len());
    for item in &parsed {
        match answer(item, trace_name, &resolved, shared, deadline) {
            Answer::Fresh(body) => {
                hpcfail_obs::counter("serve.cache.miss").inc();
                bodies.push(Json::Str((*body).clone()));
            }
            Answer::Cached(body) => {
                hpcfail_obs::counter("serve.cache.hit").inc();
                bodies.push(Json::Str((*body).clone()));
            }
            Answer::Coalesced(body) => {
                hpcfail_obs::counter("serve.coalesced").inc();
                bodies.push(Json::Str((*body).clone()));
            }
            Answer::Degraded => {
                hpcfail_obs::counter("serve.degraded").inc();
                let mut reply = Reply::error(
                    504,
                    "Gateway Timeout",
                    "deadline passed while awaiting an identical in-flight query",
                    true,
                    "batch",
                );
                reply.headers.push(("x-degraded", "true".to_owned()));
                return reply;
            }
            Answer::Failed(message) => {
                return Reply::error(500, "Internal Server Error", &message, false, "batch");
            }
        }
    }
    // Each element is the exact /query body for that request, embedded
    // as a JSON string so per-query byte-identity survives batching.
    let body = Json::obj([("results", Json::Arr(bodies))]).pretty();
    Reply::ok(body, "batch")
}

enum Answer {
    /// Computed by this request.
    Fresh(Arc<String>),
    /// Served from the result cache.
    Cached(Arc<String>),
    /// Shared from another client's identical in-flight query.
    Coalesced(Arc<String>),
    /// Deadline expired while waiting on the in-flight leader.
    Degraded,
    /// The query panicked; the message is sanitized.
    Failed(String),
}

fn answer(
    request: &AnalysisRequest,
    trace_name: &str,
    resolved: &ResolvedTrace,
    shared: &Shared,
    deadline: Instant,
) -> Answer {
    // The key carries the *epoch fingerprint*, not just the name: a
    // re-uploaded trace with different data can never serve a
    // predecessor's cached bytes, while re-uploading identical data
    // keeps the warm entries.
    let key: CacheKey = (
        trace_name.to_owned(),
        resolved.fingerprint,
        request.canonical(),
    );
    if let Some(body) = shared.cache.get(&key) {
        return Answer::Cached(body);
    }
    match shared.coalescer.claim(&key) {
        Claim::Leader(guard) => {
            let span_name = format!("serve.query.{}", request.kind());
            let span = hpcfail_obs::span(&span_name);
            span.attr("kind", request.kind());
            let computed = catch_unwind(AssertUnwindSafe(|| {
                Arc::new(resolved.engine.run(request).to_json().pretty())
            }));
            let _ = span;
            match computed {
                Ok(body) => {
                    shared.cache.put(key, Arc::clone(&body));
                    shared.coalescer.complete(guard, Arc::clone(&body));
                    Answer::Fresh(body)
                }
                Err(_) => {
                    shared.coalescer.abandon(guard);
                    Answer::Failed(format!(
                        "analysis {} panicked; see server logs",
                        request.kind()
                    ))
                }
            }
        }
        Claim::Follower(flight) => match flight.wait(deadline) {
            Some(body) => Answer::Coalesced(body),
            None => Answer::Degraded,
        },
    }
}

/// The admission chaos point: latency, an injected typed error, or a
/// forced shed — decided before the real gate sees the request.
fn chaos_admission(shared: &Shared, class: CostClass, kind: &str) -> Option<Reply> {
    let chaos = shared.chaos.as_ref()?;
    match chaos.decide(ChaosPoint::Admission)? {
        ChaosAction::Delay(delay) => {
            std::thread::sleep(delay);
            None
        }
        ChaosAction::Fail { status } => Some(Reply::error(
            status,
            reason_phrase(status),
            "chaos-injected error",
            false,
            kind,
        )),
        ChaosAction::Shed => {
            let reason = shared.gate.record_chaos_shed(class);
            Some(Reply::shed(
                reason,
                shared.gate.config().retry_after_ms,
                kind,
            ))
        }
        ChaosAction::Drop => None, // unreachable: parser rejects drop here
    }
}

/// The engine chaos point: latency/stall or an injected typed error,
/// decided after admission (the permit is held through the sleep, so
/// stalls genuinely occupy gate capacity).
fn chaos_engine_point(shared: &Shared, kind: &str) -> Option<Reply> {
    let chaos = shared.chaos.as_ref()?;
    match chaos.decide(ChaosPoint::Engine)? {
        ChaosAction::Delay(delay) => {
            std::thread::sleep(delay);
            None
        }
        ChaosAction::Fail { status } => Some(Reply::error(
            status,
            reason_phrase(status),
            "chaos-injected error",
            false,
            kind,
        )),
        _ => None, // unreachable: parser rejects drop/shed here
    }
}

/// The reason phrase for an injected status code.
fn reason_phrase(status: u16) -> &'static str {
    match status {
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Error",
    }
}

fn deadline_ms(request: &Request, shared: &Shared) -> u64 {
    request
        .header("x-deadline-ms")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(shared.default_deadline_ms)
        .max(1)
}

/// The uniform typed error body.
fn error_body(status: u16, message: &str, degraded: bool) -> String {
    Json::obj([(
        "error",
        Json::obj([
            ("status", Json::Num(f64::from(status))),
            ("message", Json::Str(message.to_owned())),
            ("degraded", Json::Bool(degraded)),
        ]),
    )])
    .pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bodies_are_typed_json() {
        let body = error_body(400, "nope", false);
        let json = hpcfail_obs::json::parse(&body).expect("valid JSON");
        assert_eq!(
            json.get("error")
                .and_then(|e| e.get("status"))
                .and_then(Json::as_u64),
            Some(400)
        );
        assert_eq!(
            json.get("error")
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str),
            Some("nope")
        );
    }

    #[test]
    fn trace_wrap_preserves_the_exact_body() {
        let body = "{\n  \"answer\": 42\n}".to_owned();
        let wrapped = wrap_traced(body.clone(), "00000000000000ff", None);
        let json = hpcfail_obs::json::parse(&wrapped).expect("valid JSON");
        assert_eq!(
            json.get("result").and_then(Json::as_str),
            Some(body.as_str()),
            "original bytes survive as the result string"
        );
        assert_eq!(
            json.get("trace_id").and_then(Json::as_str),
            Some("00000000000000ff")
        );
    }
}
