//! The multi-tenant trace registry: named traces, epoch hot-swap and
//! residency budgets.
//!
//! Each registry slot maps a name to an [`Engine`] built from one
//! uploaded (or boot-time) trace. Re-uploading a name is an **epoch
//! swap**: the new engine is built off to the side, then swapped in
//! under the registry lock while the old `Arc<Engine>` stays alive for
//! exactly as long as in-flight queries hold it — a query pinned to
//! epoch N finishes against epoch N's data even if epoch N+1 arrives
//! mid-flight, and the old epoch's memory is released the moment the
//! last pin drops.
//!
//! Under a global `--max-resident-bytes` budget, the registry demotes
//! the least-recently-queried traces to **cold** state: the engine is
//! re-encoded as `.hpcsnap` bytes (a fraction of the warm footprint —
//! no indexes, no materialized rows) and the warm engine dropped. The
//! next query against a cold trace rehydrates it transparently, which
//! may in turn demote some other idle trace. The trace being inserted
//! or queried is never its own eviction victim, so a single trace
//! larger than the budget still serves (the budget is best-effort, not
//! a hard ceiling).
//!
//! Everything is observable: `serve.registry.*` gauges (trace count,
//! warm resident bytes, cold count) and counters (uploads, swaps,
//! evictions, cold loads, removals) feed `/metrics` and the shutdown
//! manifest.

use hpcfail_core::engine::Engine;
use hpcfail_obs::json::Json;
use hpcfail_store::snapshot::{decode_snapshot, snapshot_bytes};
use hpcfail_store::trace::Trace;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// The name legacy endpoints resolve against.
pub const DEFAULT_TRACE: &str = "default";

/// `true` when `name` is usable as a registry slot: 1–64 characters,
/// each ASCII alphanumeric, `_`, `-` or `.` (never starting with a
/// dot). Names appear in URLs, metric names and manifests, so the
/// alphabet is deliberately narrow.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && !name.starts_with('.')
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.')
}

/// Where a registry entry's data came from (shown in listings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceSource {
    /// Loaded at server boot.
    Boot,
    /// Uploaded as CSV through the ingest machinery.
    Csv,
    /// Uploaded as a binary `.hpcsnap` body.
    Snapshot,
}

impl TraceSource {
    fn label(self) -> &'static str {
        match self {
            TraceSource::Boot => "boot",
            TraceSource::Csv => "csv",
            TraceSource::Snapshot => "snapshot",
        }
    }
}

enum State {
    /// Engine resident and answering queries.
    Warm(Arc<Engine>),
    /// Demoted to encoded snapshot bytes; rehydrated on next query.
    Cold(Arc<Vec<u8>>),
}

struct Entry {
    epoch: u64,
    fingerprint: u64,
    /// Warm heap footprint of the trace's event storage (retained
    /// while cold so listings and rehydration planning can see it).
    resident_bytes: u64,
    systems: usize,
    records: u64,
    source: TraceSource,
    state: State,
    /// Recency stamp; larger = more recently queried.
    last_used: u64,
}

impl Entry {
    fn is_warm(&self) -> bool {
        matches!(self.state, State::Warm(_))
    }
}

struct Inner {
    entries: BTreeMap<String, Entry>,
    next_epoch: u64,
    next_stamp: u64,
}

/// A resolved registry entry: the engine pinned to its epoch. Holding
/// the `Arc` keeps that epoch's data alive through the whole request,
/// whatever swaps or evictions happen meanwhile.
#[derive(Clone)]
pub struct ResolvedTrace {
    /// The epoch's engine.
    pub engine: Arc<Engine>,
    /// The registry epoch this resolution pinned.
    pub epoch: u64,
    /// The engine's structural fingerprint (the cache-key component).
    pub fingerprint: u64,
}

/// One entry's public description (the `/v1/traces` row).
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// Registry slot name.
    pub name: String,
    /// Epoch counter value assigned at insert.
    pub epoch: u64,
    /// Structural fingerprint of the trace data.
    pub fingerprint: u64,
    /// Systems in the trace.
    pub systems: usize,
    /// Total failure records.
    pub records: u64,
    /// Warm heap footprint, bytes.
    pub resident_bytes: u64,
    /// `"warm"` or `"cold"`.
    pub state: &'static str,
    /// Provenance label (`boot`, `csv`, `snapshot`).
    pub source: &'static str,
}

impl TraceSummary {
    /// The listing row as JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("epoch", Json::Num(self.epoch as f64)),
            (
                "fingerprint",
                Json::Str(format!("{:016x}", self.fingerprint)),
            ),
            ("systems", Json::Num(self.systems as f64)),
            ("records", Json::Num(self.records as f64)),
            ("resident_bytes", Json::Num(self.resident_bytes as f64)),
            ("state", Json::Str(self.state.to_owned())),
            ("source", Json::Str(self.source.to_owned())),
        ])
    }
}

/// The named trace → engine map behind the serving API.
pub struct TraceRegistry {
    inner: Mutex<Inner>,
    max_resident_bytes: u64,
}

impl TraceRegistry {
    /// An empty registry under a warm-residency budget in bytes
    /// (0 = unlimited).
    pub fn new(max_resident_bytes: u64) -> Self {
        TraceRegistry {
            inner: Mutex::new(Inner {
                entries: BTreeMap::new(),
                next_epoch: 0,
                next_stamp: 0,
            }),
            max_resident_bytes,
        }
    }

    /// The configured warm-residency budget (0 = unlimited).
    pub fn max_resident_bytes(&self) -> u64 {
        self.max_resident_bytes
    }

    /// Inserts (or epoch-swaps) `name` with a freshly built engine.
    /// Returns the new entry's summary; the previous epoch's engine, if
    /// any, is dropped from the registry here and freed once its last
    /// in-flight query completes.
    pub fn insert(&self, name: &str, trace: Trace, source: TraceSource) -> TraceSummary {
        self.insert_engine(name, Arc::new(Engine::new(trace)), source)
    }

    /// [`insert`](TraceRegistry::insert) for an engine built elsewhere
    /// (server boot wraps its already-constructed engine this way).
    pub fn insert_engine(
        &self,
        name: &str,
        engine: Arc<Engine>,
        source: TraceSource,
    ) -> TraceSummary {
        let trace = engine.trace();
        let resident_bytes = trace.resident_bytes();
        let systems = trace.len();
        let records = trace.total_failures() as u64;
        let fingerprint = engine.fingerprint();

        let mut inner = self.inner.lock().expect("registry lock");
        let epoch = inner.next_epoch;
        inner.next_epoch += 1;
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        let replaced = inner
            .entries
            .insert(
                name.to_owned(),
                Entry {
                    epoch,
                    fingerprint,
                    resident_bytes,
                    systems,
                    records,
                    source,
                    state: State::Warm(engine),
                    last_used: stamp,
                },
            )
            .is_some();
        hpcfail_obs::counter("serve.registry.uploads").inc();
        if replaced {
            hpcfail_obs::counter("serve.registry.swaps").inc();
        }
        self.enforce_budget(&mut inner, name);
        publish_gauges(&inner);
        summarize(name, &inner.entries[name])
    }

    /// Resolves `name` to its current epoch's engine, bumping recency.
    /// A cold entry is rehydrated from its snapshot bytes first (the
    /// decode happens outside the registry lock, so concurrent queries
    /// against other traces never stall behind it).
    pub fn resolve(&self, name: &str) -> Option<ResolvedTrace> {
        let cold: Arc<Vec<u8>>;
        let cold_epoch: u64;
        {
            let mut inner = self.inner.lock().expect("registry lock");
            let stamp = inner.next_stamp;
            inner.next_stamp += 1;
            let entry = inner.entries.get_mut(name)?;
            entry.last_used = stamp;
            match &entry.state {
                State::Warm(engine) => {
                    return Some(ResolvedTrace {
                        engine: Arc::clone(engine),
                        epoch: entry.epoch,
                        fingerprint: entry.fingerprint,
                    });
                }
                State::Cold(bytes) => {
                    cold = Arc::clone(bytes);
                    cold_epoch = entry.epoch;
                }
            }
        }
        // Rehydrate outside the lock, then install if nothing changed
        // meanwhile (an interleaved upload wins — its epoch is newer).
        let trace = match decode_snapshot(&cold) {
            Ok(trace) => trace,
            Err(_) => {
                hpcfail_obs::counter("serve.registry.cold_load_failures").inc();
                return None;
            }
        };
        hpcfail_obs::counter("serve.registry.cold_loads").inc();
        let engine = Arc::new(Engine::new(trace));
        let mut inner = self.inner.lock().expect("registry lock");
        let entry = inner.entries.get_mut(name)?;
        if entry.epoch == cold_epoch && !entry.is_warm() {
            entry.state = State::Warm(Arc::clone(&engine));
            let resolved = ResolvedTrace {
                engine,
                epoch: entry.epoch,
                fingerprint: entry.fingerprint,
            };
            self.enforce_budget(&mut inner, name);
            publish_gauges(&inner);
            return Some(resolved);
        }
        // The slot moved on while we decoded; answer from whatever is
        // there now (or fail if it was removed).
        match &entry.state {
            State::Warm(current) => Some(ResolvedTrace {
                engine: Arc::clone(current),
                epoch: entry.epoch,
                fingerprint: entry.fingerprint,
            }),
            State::Cold(_) => None,
        }
    }

    /// Removes `name` entirely. Returns the evicted entry's summary,
    /// or `None` if it was not present.
    pub fn remove(&self, name: &str) -> Option<TraceSummary> {
        let mut inner = self.inner.lock().expect("registry lock");
        let entry = inner.entries.remove(name)?;
        hpcfail_obs::counter("serve.registry.removals").inc();
        publish_gauges(&inner);
        Some(summarize(name, &entry))
    }

    /// `true` when `name` is registered (warm or cold).
    pub fn contains(&self, name: &str) -> bool {
        self.inner
            .lock()
            .expect("registry lock")
            .entries
            .contains_key(name)
    }

    /// Number of registered traces.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("registry lock").entries.len()
    }

    /// `true` when no traces are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total warm resident bytes (the `serve.registry.resident_bytes`
    /// gauge).
    pub fn resident_bytes(&self) -> u64 {
        warm_bytes(&self.inner.lock().expect("registry lock"))
    }

    /// Every entry's summary, in name order.
    pub fn list(&self) -> Vec<TraceSummary> {
        let inner = self.inner.lock().expect("registry lock");
        inner
            .entries
            .iter()
            .map(|(name, entry)| summarize(name, entry))
            .collect()
    }

    /// One entry's summary.
    pub fn summary(&self, name: &str) -> Option<TraceSummary> {
        let inner = self.inner.lock().expect("registry lock");
        inner.entries.get(name).map(|entry| summarize(name, entry))
    }

    /// Demotes least-recently-queried warm entries (never `protect`)
    /// to cold snapshot bytes until warm residency fits the budget.
    fn enforce_budget(&self, inner: &mut Inner, protect: &str) {
        if self.max_resident_bytes == 0 {
            return;
        }
        while warm_bytes(inner) > self.max_resident_bytes {
            let victim = inner
                .entries
                .iter()
                .filter(|(name, entry)| entry.is_warm() && name.as_str() != protect)
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(name, _)| name.clone());
            let Some(victim) = victim else {
                return; // nothing evictable: only the protected trace is warm
            };
            let entry = inner.entries.get_mut(&victim).expect("victim present");
            if let State::Warm(engine) = &entry.state {
                let bytes = snapshot_bytes(engine.trace());
                entry.state = State::Cold(Arc::new(bytes));
                hpcfail_obs::counter("serve.registry.evictions").inc();
            }
        }
    }
}

fn warm_bytes(inner: &Inner) -> u64 {
    inner
        .entries
        .values()
        .filter(|e| e.is_warm())
        .map(|e| e.resident_bytes)
        .sum()
}

fn publish_gauges(inner: &Inner) {
    hpcfail_obs::gauge("serve.registry.traces").set(inner.entries.len() as f64);
    hpcfail_obs::gauge("serve.registry.resident_bytes").set(warm_bytes(inner) as f64);
    let cold = inner.entries.values().filter(|e| !e.is_warm()).count();
    hpcfail_obs::gauge("serve.registry.cold_traces").set(cold as f64);
}

fn summarize(name: &str, entry: &Entry) -> TraceSummary {
    TraceSummary {
        name: name.to_owned(),
        epoch: entry.epoch,
        fingerprint: entry.fingerprint,
        systems: entry.systems,
        records: entry.records,
        resident_bytes: entry.resident_bytes,
        state: if entry.is_warm() { "warm" } else { "cold" },
        source: entry.source.label(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcfail_synth::FleetSpec;

    fn small_trace(seed: u64) -> Trace {
        FleetSpec::lanl_scaled(0.02).generate(seed).into_store()
    }

    #[test]
    fn names_are_validated() {
        for good in ["default", "lanl-96", "a", "fleet_100k", "v1.2"] {
            assert!(valid_name(good), "{good}");
        }
        let long = "x".repeat(65);
        for bad in ["", "a/b", "a b", "ü", "..", ".hidden", long.as_str()] {
            assert!(!valid_name(bad), "{bad:?}");
        }
    }

    #[test]
    fn insert_resolve_and_remove_round_trip() {
        let registry = TraceRegistry::new(0);
        assert!(registry.resolve("default").is_none());
        let summary = registry.insert("default", small_trace(1), TraceSource::Boot);
        assert_eq!(summary.state, "warm");
        assert!(summary.resident_bytes > 0);
        assert!(summary.records > 0);

        let resolved = registry.resolve("default").expect("registered");
        assert_eq!(resolved.fingerprint, summary.fingerprint);
        assert_eq!(resolved.epoch, summary.epoch);
        assert_eq!(registry.len(), 1);

        assert!(registry.remove("default").is_some());
        assert!(registry.remove("default").is_none());
        assert!(registry.resolve("default").is_none());
        assert!(registry.is_empty());
    }

    #[test]
    fn reupload_bumps_epoch_and_swaps_engine() {
        let registry = TraceRegistry::new(0);
        let first = registry.insert("t", small_trace(1), TraceSource::Csv);
        let pinned = registry.resolve("t").expect("warm");
        let weak = Arc::downgrade(&pinned.engine);

        let second = registry.insert("t", small_trace(2), TraceSource::Csv);
        assert!(second.epoch > first.epoch);
        assert_ne!(second.fingerprint, first.fingerprint);
        assert_eq!(registry.len(), 1);

        // The pinned resolution still answers against its own epoch...
        assert_eq!(pinned.fingerprint, first.fingerprint);
        assert!(weak.upgrade().is_some(), "pin keeps the old epoch alive");
        // ...and dropping the pin releases the old epoch's memory.
        drop(pinned);
        assert!(weak.upgrade().is_none(), "old epoch freed after last pin");

        let now = registry.resolve("t").expect("current epoch");
        assert_eq!(now.fingerprint, second.fingerprint);
    }

    #[test]
    fn budget_demotes_lru_to_cold_and_rehydrates() {
        let a = small_trace(1);
        let budget = a.resident_bytes() + a.resident_bytes() / 2;
        let registry = TraceRegistry::new(budget);
        let fp_a = registry.insert("a", a, TraceSource::Boot).fingerprint;
        // Touch "a" so "b"'s insert finds "a" most recently used — but
        // the inserted trace itself is protected, so "a" is demoted.
        registry.resolve("a").expect("warm");
        let fp_b = registry
            .insert("b", small_trace(2), TraceSource::Snapshot)
            .fingerprint;

        let states: BTreeMap<String, &'static str> = registry
            .list()
            .into_iter()
            .map(|s| (s.name, s.state))
            .collect();
        assert_eq!(states["a"], "cold");
        assert_eq!(states["b"], "warm");
        assert!(registry.resident_bytes() <= budget);

        // Cold resolution rehydrates with the same fingerprint and
        // demotes the other trace in turn.
        let back = registry.resolve("a").expect("rehydrated");
        assert_eq!(back.fingerprint, fp_a);
        let states: BTreeMap<String, &'static str> = registry
            .list()
            .into_iter()
            .map(|s| (s.name, s.state))
            .collect();
        assert_eq!(states["a"], "warm");
        assert_eq!(states["b"], "cold");
        assert_eq!(registry.resolve("b").expect("rehydrates").fingerprint, fp_b);
    }

    #[test]
    fn unlimited_budget_never_evicts() {
        let registry = TraceRegistry::new(0);
        registry.insert("a", small_trace(1), TraceSource::Boot);
        registry.insert("b", small_trace(2), TraceSource::Boot);
        assert!(registry.list().iter().all(|s| s.state == "warm"));
    }

    #[test]
    fn summaries_serialize_to_json() {
        let registry = TraceRegistry::new(0);
        let summary = registry.insert("lanl", small_trace(3), TraceSource::Csv);
        let json = summary.to_json();
        assert_eq!(json.get("name").and_then(Json::as_str), Some("lanl"));
        assert_eq!(json.get("source").and_then(Json::as_str), Some("csv"));
        assert_eq!(
            json.get("fingerprint").and_then(Json::as_str),
            Some(format!("{:016x}", summary.fingerprint).as_str())
        );
    }
}
