//! Bounded admission in front of the worker pool: cost classes,
//! brownout, typed load shedding.
//!
//! The gate caps how many `/query` and `/batch` requests may be *in
//! analysis* at once ([`AdmissionConfig::max_inflight`]); control
//! endpoints (`/healthz`, `/metrics`, `/requests`, `/shutdown`) never
//! pass through it, so the server stays observable and stoppable under
//! any overload. Each request is classified before admission:
//!
//! | class | meaning | brownout treatment |
//! |---|---|---|
//! | [`CostClass::Cheap`] | the result cache already holds the answer | admitted while any capacity remains |
//! | [`CostClass::Expensive`] | a cold scan must run | shed once the gate passes ¾ occupancy |
//! | [`CostClass::Batch`] | a multi-query batch | shed once the gate passes ¾ occupancy |
//!
//! When the gate is full a request either sheds immediately
//! ([`ShedPolicy::Reject`]) or waits in a bounded queue until its own
//! deadline ([`ShedPolicy::Brownout`]). Every shed is *typed*: the
//! caller gets a [`ShedReason`] that maps to a 429 (try again soon:
//! queue full / queue timeout) or 503 (capacity deliberately withheld:
//! brownout / draining / chaos) with a `Retry-After` hint — never a
//! silent drop. Shed decisions are counted both in gate-local atomics
//! (surfaced by `/healthz`) and as `serve.shed.*` registry counters
//! (surfaced by `/metrics` and the run manifest).
//!
//! Shutdown calls [`AdmissionGate::begin_drain`]: admitted requests
//! finish, queued waiters wake immediately and shed with
//! [`ShedReason::Draining`], and new arrivals shed at the door.

use hpcfail_obs::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// How much work one admitted request represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostClass {
    /// The result cache already holds the answer; admission is cheap.
    Cheap,
    /// A cold query: the engine must run an analysis.
    Expensive,
    /// A `/batch` request: several queries behind one admission.
    Batch,
}

impl CostClass {
    /// Stable label used in counters and logs.
    pub fn label(self) -> &'static str {
        match self {
            CostClass::Cheap => "cheap",
            CostClass::Expensive => "expensive",
            CostClass::Batch => "batch",
        }
    }
}

/// What the gate does when capacity runs out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Shed immediately at capacity; no queueing.
    Reject,
    /// Shed expensive classes once the gate passes ¾ occupancy; queue
    /// the rest (bounded, deadline-limited).
    #[default]
    Brownout,
}

impl ShedPolicy {
    /// Stable label (`reject` / `brownout`).
    pub fn label(self) -> &'static str {
        match self {
            ShedPolicy::Reject => "reject",
            ShedPolicy::Brownout => "brownout",
        }
    }
}

impl std::str::FromStr for ShedPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "reject" => Ok(ShedPolicy::Reject),
            "brownout" => Ok(ShedPolicy::Brownout),
            other => Err(format!(
                "unknown shed policy {other:?}; expected \"reject\" or \"brownout\""
            )),
        }
    }
}

/// Gate tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Most requests in analysis at once; 0 disables the gate (every
    /// request admits immediately).
    pub max_inflight: usize,
    /// Most requests waiting for a slot at once (beyond it: 429).
    pub max_queued: usize,
    /// What to do at capacity.
    pub policy: ShedPolicy,
    /// The `Retry-After` hint attached to shed responses, milliseconds.
    pub retry_after_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_inflight: 0,
            max_queued: 64,
            policy: ShedPolicy::Brownout,
            retry_after_ms: 50,
        }
    }
}

/// Why a request was shed. Every variant maps to a typed HTTP answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Gate and queue both full (or policy forbids queueing): 429.
    QueueFull,
    /// The request's deadline passed while it waited for a slot: 429.
    QueueTimeout,
    /// Brownout withheld capacity from an expensive class: 503.
    Brownout,
    /// The server is draining for shutdown: 503.
    Draining,
    /// A chaos rule forced this shed: 503.
    Chaos,
}

/// Every shed reason, in counter order.
pub const SHED_REASONS: [ShedReason; 5] = [
    ShedReason::QueueFull,
    ShedReason::QueueTimeout,
    ShedReason::Brownout,
    ShedReason::Draining,
    ShedReason::Chaos,
];

impl ShedReason {
    /// The HTTP status and reason phrase this shed answers with.
    pub fn status(self) -> (u16, &'static str) {
        match self {
            ShedReason::QueueFull | ShedReason::QueueTimeout => (429, "Too Many Requests"),
            ShedReason::Brownout | ShedReason::Draining | ShedReason::Chaos => {
                (503, "Service Unavailable")
            }
        }
    }

    /// Stable label used in counters, headers and logs.
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::QueueTimeout => "queue_timeout",
            ShedReason::Brownout => "brownout",
            ShedReason::Draining => "draining",
            ShedReason::Chaos => "chaos",
        }
    }

    /// Human-readable detail for the typed error body.
    pub fn message(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "admission queue is full; retry after the hinted delay",
            ShedReason::QueueTimeout => "deadline passed while waiting for an admission slot",
            ShedReason::Brownout => {
                "brownout: capacity reserved for cheap requests; retry after the hinted delay"
            }
            ShedReason::Draining => "server is draining for shutdown",
            ShedReason::Chaos => "chaos injection shed this request",
        }
    }

    fn index(self) -> usize {
        match self {
            ShedReason::QueueFull => 0,
            ShedReason::QueueTimeout => 1,
            ShedReason::Brownout => 2,
            ShedReason::Draining => 3,
            ShedReason::Chaos => 4,
        }
    }
}

#[derive(Debug)]
struct GateState {
    inflight: usize,
    queued: usize,
    draining: bool,
}

/// The bounded admission gate. One per server; shared by every worker.
#[derive(Debug)]
pub struct AdmissionGate {
    config: AdmissionConfig,
    state: Mutex<GateState>,
    available: Condvar,
    shed: [AtomicU64; 5],
}

impl AdmissionGate {
    /// A gate with `config` limits, empty and not draining.
    pub fn new(config: AdmissionConfig) -> AdmissionGate {
        AdmissionGate {
            config,
            state: Mutex::new(GateState {
                inflight: 0,
                queued: 0,
                draining: false,
            }),
            available: Condvar::new(),
            shed: [const { AtomicU64::new(0) }; 5],
        }
    }

    /// The limits this gate enforces.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Occupancy above which brownout sheds expensive classes: ¾ of
    /// `max_inflight`, rounded up, at least 1.
    fn brownout_threshold(&self) -> usize {
        (self.config.max_inflight - self.config.max_inflight / 4).max(1)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GateState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn publish_gauges(&self, state: &GateState) {
        hpcfail_obs::gauge("serve.admission.inflight").set(state.inflight as f64);
        hpcfail_obs::gauge("serve.admission.queued").set(state.queued as f64);
    }

    fn shed(&self, class: CostClass, reason: ShedReason) -> ShedReason {
        self.shed[reason.index()].fetch_add(1, Ordering::SeqCst);
        hpcfail_obs::counter("serve.shed.total").inc();
        hpcfail_obs::counter(&format!("serve.shed.{}", reason.label())).inc();
        hpcfail_obs::counter(&format!("serve.shed.class.{}", class.label())).inc();
        reason
    }

    /// Records a chaos-forced shed (the decision was made by the chaos
    /// engine, not by gate occupancy) so it shows up in the same
    /// counters and the `/healthz` breakdown.
    pub fn record_chaos_shed(&self, class: CostClass) -> ShedReason {
        self.shed(class, ShedReason::Chaos)
    }

    /// Admits one request of `class`, waiting in the bounded queue up
    /// to `deadline` when the gate is full.
    ///
    /// # Errors
    ///
    /// A typed [`ShedReason`] when the request must be shed instead.
    pub fn admit(&self, class: CostClass, deadline: Instant) -> Result<Permit<'_>, ShedReason> {
        if self.config.max_inflight == 0 {
            // Gate disabled: track occupancy for drain, admit always.
            let mut state = self.lock();
            if state.draining {
                return Err(self.shed(class, ShedReason::Draining));
            }
            state.inflight += 1;
            self.publish_gauges(&state);
            return Ok(Permit { gate: self });
        }
        let mut state = self.lock();
        loop {
            if state.draining {
                return Err(self.shed(class, ShedReason::Draining));
            }
            if state.inflight < self.config.max_inflight {
                if self.config.policy == ShedPolicy::Brownout
                    && class != CostClass::Cheap
                    && state.inflight >= self.brownout_threshold()
                {
                    return Err(self.shed(class, ShedReason::Brownout));
                }
                state.inflight += 1;
                self.publish_gauges(&state);
                return Ok(Permit { gate: self });
            }
            if self.config.policy == ShedPolicy::Reject {
                return Err(self.shed(class, ShedReason::QueueFull));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(self.shed(class, ShedReason::QueueTimeout));
            }
            if state.queued >= self.config.max_queued {
                return Err(self.shed(class, ShedReason::QueueFull));
            }
            state.queued += 1;
            self.publish_gauges(&state);
            let (next, _timeout) = self
                .available
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = next;
            state.queued -= 1;
            self.publish_gauges(&state);
            // Loop: a freed slot admits, a passed deadline sheds as
            // QueueTimeout, drain sheds as Draining.
        }
    }

    /// Starts draining: queued waiters wake and shed immediately, new
    /// arrivals shed at the door, admitted requests run to completion.
    pub fn begin_drain(&self) {
        let mut state = self.lock();
        state.draining = true;
        drop(state);
        self.available.notify_all();
    }

    /// `true` once [`AdmissionGate::begin_drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }

    /// Requests currently admitted (holding a [`Permit`]).
    pub fn inflight(&self) -> usize {
        self.lock().inflight
    }

    /// Requests currently waiting in the admission queue.
    pub fn queued(&self) -> usize {
        self.lock().queued
    }

    /// Total sheds since boot, all reasons.
    pub fn shed_total(&self) -> u64 {
        self.shed.iter().map(|c| c.load(Ordering::SeqCst)).sum()
    }

    /// Sheds since boot for one reason.
    pub fn shed_count(&self, reason: ShedReason) -> u64 {
        self.shed[reason.index()].load(Ordering::SeqCst)
    }

    /// The `/healthz` `admission` object: limits, live occupancy and
    /// the per-reason shed breakdown.
    pub fn to_json(&self) -> Json {
        let state = self.lock();
        let sheds: Vec<(String, Json)> = SHED_REASONS
            .iter()
            .map(|r| {
                (
                    r.label().to_owned(),
                    Json::Num(self.shed[r.index()].load(Ordering::SeqCst) as f64),
                )
            })
            .collect();
        Json::obj([
            ("max_inflight", Json::Num(self.config.max_inflight as f64)),
            ("max_queued", Json::Num(self.config.max_queued as f64)),
            ("policy", Json::Str(self.config.policy.label().to_owned())),
            ("inflight", Json::Num(state.inflight as f64)),
            ("queued", Json::Num(state.queued as f64)),
            ("draining", Json::Bool(state.draining)),
            ("shed_total", Json::Num(self.shed_total() as f64)),
            ("shed", Json::Obj(sheds.into_iter().collect())),
        ])
    }
}

/// An admitted request's slot; dropping it frees the slot and wakes one
/// queued waiter.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.lock();
        state.inflight = state.inflight.saturating_sub(1);
        self.gate.publish_gauges(&state);
        drop(state);
        self.gate.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn gate(max_inflight: usize, max_queued: usize, policy: ShedPolicy) -> AdmissionGate {
        AdmissionGate::new(AdmissionConfig {
            max_inflight,
            max_queued,
            policy,
            retry_after_ms: 10,
        })
    }

    fn soon() -> Instant {
        Instant::now() + Duration::from_millis(50)
    }

    #[test]
    fn disabled_gate_admits_everything() {
        let gate = gate(0, 0, ShedPolicy::Reject);
        let permits: Vec<_> = (0..32)
            .map(|_| gate.admit(CostClass::Batch, soon()).expect("admitted"))
            .collect();
        assert_eq!(gate.inflight(), 32);
        drop(permits);
        assert_eq!(gate.inflight(), 0);
        assert_eq!(gate.shed_total(), 0);
    }

    #[test]
    fn reject_policy_sheds_at_capacity_without_queueing() {
        let gate = gate(2, 8, ShedPolicy::Reject);
        let a = gate.admit(CostClass::Cheap, soon()).expect("slot 1");
        let _b = gate.admit(CostClass::Cheap, soon()).expect("slot 2");
        let shed = gate.admit(CostClass::Cheap, soon()).expect_err("full");
        assert_eq!(shed, ShedReason::QueueFull);
        assert_eq!(shed.status().0, 429);
        assert_eq!(gate.queued(), 0, "reject never queues");
        drop(a);
        gate.admit(CostClass::Cheap, soon())
            .expect("freed slot admits again");
    }

    #[test]
    fn brownout_sheds_expensive_classes_first() {
        // max_inflight 4 → threshold 3: with 3 admitted, expensive and
        // batch shed while cheap still enters.
        let gate = gate(4, 8, ShedPolicy::Brownout);
        let _held: Vec<_> = (0..3)
            .map(|_| gate.admit(CostClass::Cheap, soon()).expect("fill"))
            .collect();
        let shed = gate
            .admit(CostClass::Expensive, soon())
            .expect_err("browned out");
        assert_eq!(shed, ShedReason::Brownout);
        assert_eq!(shed.status().0, 503);
        assert_eq!(
            gate.admit(CostClass::Batch, soon()).expect_err("batch too"),
            ShedReason::Brownout
        );
        gate.admit(CostClass::Cheap, soon())
            .expect("cheap still admitted under brownout");
    }

    #[test]
    fn queue_timeout_sheds_with_429() {
        let gate = gate(1, 8, ShedPolicy::Brownout);
        let _held = gate.admit(CostClass::Cheap, soon()).expect("slot");
        let deadline = Instant::now() + Duration::from_millis(30);
        let shed = gate
            .admit(CostClass::Cheap, deadline)
            .expect_err("deadline passes in queue");
        assert_eq!(shed, ShedReason::QueueTimeout);
        assert_eq!(shed.status().0, 429);
        assert_eq!(gate.queued(), 0, "waiter left the queue");
    }

    #[test]
    fn queue_bound_sheds_queue_full() {
        let gate = gate(1, 1, ShedPolicy::Brownout);
        let held = gate.admit(CostClass::Cheap, soon()).expect("slot");
        // One waiter occupies the queue from another thread...
        std::thread::scope(|scope| {
            let waiter = scope
                .spawn(|| gate.admit(CostClass::Cheap, Instant::now() + Duration::from_secs(2)));
            while gate.queued() == 0 {
                std::thread::yield_now();
            }
            // ...so a second queue candidate sheds immediately.
            let shed = gate
                .admit(CostClass::Cheap, Instant::now() + Duration::from_secs(2))
                .expect_err("queue full");
            assert_eq!(shed, ShedReason::QueueFull);
            drop(held);
            waiter
                .join()
                .expect("waiter thread")
                .expect("queued waiter admitted after release");
        });
    }

    #[test]
    fn drain_wakes_queued_waiters_and_sheds_new_arrivals() {
        let gate = gate(1, 8, ShedPolicy::Brownout);
        let held = gate.admit(CostClass::Cheap, soon()).expect("slot");
        std::thread::scope(|scope| {
            let waiter = scope
                .spawn(|| gate.admit(CostClass::Cheap, Instant::now() + Duration::from_secs(10)));
            while gate.queued() == 0 {
                std::thread::yield_now();
            }
            gate.begin_drain();
            assert_eq!(
                waiter.join().expect("waiter thread").expect_err("drained"),
                ShedReason::Draining
            );
        });
        assert_eq!(
            gate.admit(CostClass::Cheap, soon()).expect_err("draining"),
            ShedReason::Draining
        );
        assert_eq!(gate.inflight(), 1, "admitted request still holds its slot");
        drop(held);
        assert_eq!(gate.inflight(), 0);
    }

    #[test]
    fn concurrency_never_exceeds_max_inflight() {
        let gate = gate(3, 64, ShedPolicy::Brownout);
        let live = AtomicUsize::new(0);
        let high_water = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..16 {
                scope.spawn(|| {
                    for _ in 0..20 {
                        let deadline = Instant::now() + Duration::from_secs(5);
                        if let Ok(permit) = gate.admit(CostClass::Cheap, deadline) {
                            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                            high_water.fetch_max(now, Ordering::SeqCst);
                            std::thread::sleep(Duration::from_micros(200));
                            live.fetch_sub(1, Ordering::SeqCst);
                            drop(permit);
                        }
                    }
                });
            }
        });
        assert!(
            high_water.load(Ordering::SeqCst) <= 3,
            "high water {} breached max_inflight",
            high_water.load(Ordering::SeqCst)
        );
        assert_eq!(gate.inflight(), 0);
        assert_eq!(gate.queued(), 0);
    }

    #[test]
    fn shed_counts_break_down_by_reason_in_json() {
        let gate = gate(4, 8, ShedPolicy::Brownout);
        let _held: Vec<_> = (0..3)
            .map(|_| gate.admit(CostClass::Cheap, soon()).expect("fill"))
            .collect();
        let _ = gate.admit(CostClass::Expensive, soon());
        gate.record_chaos_shed(CostClass::Batch);
        let json = gate.to_json();
        assert_eq!(
            json.get("shed_total").and_then(Json::as_u64),
            Some(gate.shed_total())
        );
        assert_eq!(
            json.get("shed")
                .and_then(|s| s.get("chaos"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(json.get("policy").and_then(Json::as_str), Some("brownout"));
        assert!(gate.shed_count(ShedReason::Brownout) >= 1);
    }
}
