//! Deterministic chaos injection for the serving path.
//!
//! The serving-side dual of `hpcfail-synth`'s CSV corruptor: a seeded
//! [`ChaosConfig`] (`hpcfail-serve serve --chaos spec.json`) injects
//! latency, worker stalls, typed errors, connection drops and forced
//! sheds at four named points in the request path, so overload and
//! fault-storm recovery are provable in tests rather than asserted in
//! prose.
//!
//! # Injection points and the faults each accepts
//!
//! | point | where in the path | faults |
//! |---|---|---|
//! | `accept` | right after `accept()`, before the request is read | `latency`, `stall`, `drop` |
//! | `admission` | before the admission gate classifies the request | `latency`, `error`, `shed` |
//! | `engine` | between admission and the analysis run | `latency`, `stall`, `error` |
//! | `respond` | before the response bytes are written | `latency`, `drop` |
//!
//! The parser rejects any other point/fault pairing (a `drop` inside
//! the engine would be indistinguishable from a crash; an `error`
//! before the request is read has no one to answer).
//!
//! # Determinism
//!
//! Whether the *n*-th arrival at a point faults is a pure function of
//! `(seed, point, rule index, n)` — a chained [`mix64`] hash compared
//! against the rule's probability — never of wall time or thread
//! interleaving. Same seed + same traffic ⇒ same fault schedule, which
//! is what lets the chaos suite assert *exact* shed/retry counts. A
//! rule's optional `max` caps total firings; with concurrent workers
//! the cap itself stays exact but *which* hash-selected arrival wins
//! the last slot can race, so count-exact tests drive one thread.

use hpcfail_obs::json::{self, Json};
use hpcfail_obs::rng::{fraction, mix64};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Seeds must stay exactly representable in the JSON number model
/// (f64), so a spec round-trips without changing its schedule.
const MAX_SEED: u64 = 1 << 53;

/// A malformed or invalid chaos spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosError {
    /// The document is not valid JSON.
    Json(String),
    /// A value is missing, mistyped or out of range. `path` names the
    /// offending location (e.g. `rules[2].probability`).
    Schema {
        /// Where in the document the problem is.
        path: String,
        /// What is wrong with it.
        message: String,
    },
    /// An object contains a key the schema does not define.
    UnknownKey {
        /// The object containing the stray key.
        path: String,
        /// The stray key itself.
        key: String,
    },
    /// A chaos spec file could not be read.
    Io {
        /// The path that failed to load.
        path: String,
        /// The I/O error text.
        message: String,
    },
}

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosError::Json(message) => write!(f, "chaos spec is not valid JSON: {message}"),
            ChaosError::Schema { path, message } => {
                write!(f, "invalid chaos spec at {path}: {message}")
            }
            ChaosError::UnknownKey { path, key } => write!(f, "unknown key {key:?} in {path}"),
            ChaosError::Io { path, message } => {
                write!(f, "cannot read chaos spec {path}: {message}")
            }
        }
    }
}

impl std::error::Error for ChaosError {}

/// A named point in the request path where faults may inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosPoint {
    /// Right after `accept()`, before any bytes are read.
    Accept,
    /// Before the admission gate sees the request.
    Admission,
    /// Between admission and the analysis run.
    Engine,
    /// Before the response bytes are written.
    Respond,
}

/// Every injection point, in wire order.
pub const CHAOS_POINTS: [ChaosPoint; 4] = [
    ChaosPoint::Accept,
    ChaosPoint::Admission,
    ChaosPoint::Engine,
    ChaosPoint::Respond,
];

impl ChaosPoint {
    /// The wire label (`accept` / `admission` / `engine` / `respond`).
    pub fn label(self) -> &'static str {
        match self {
            ChaosPoint::Accept => "accept",
            ChaosPoint::Admission => "admission",
            ChaosPoint::Engine => "engine",
            ChaosPoint::Respond => "respond",
        }
    }

    fn index(self) -> usize {
        match self {
            ChaosPoint::Accept => 0,
            ChaosPoint::Admission => 1,
            ChaosPoint::Engine => 2,
            ChaosPoint::Respond => 3,
        }
    }

    fn parse(label: &str) -> Option<ChaosPoint> {
        match label {
            "accept" => Some(ChaosPoint::Accept),
            "admission" => Some(ChaosPoint::Admission),
            "engine" => Some(ChaosPoint::Engine),
            "respond" => Some(ChaosPoint::Respond),
            _ => None,
        }
    }
}

/// What a firing rule does to the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// Sleep `ms` before continuing (network / queueing delay).
    Latency {
        /// Added delay, milliseconds.
        ms: u64,
    },
    /// Sleep `ms` while *holding* the worker (a wedged worker, not a
    /// slow network); distinct from latency in counters.
    Stall {
        /// Stall length, milliseconds.
        ms: u64,
    },
    /// Answer with a typed HTTP error instead of running the request.
    Error {
        /// The injected status code (4xx or 5xx).
        status: u16,
    },
    /// Close the connection without a response (the one deliberately
    /// untyped fault — it exists so tests can prove retries cover it).
    Drop,
    /// Force the admission gate to shed (typed 503, chaos reason).
    Shed,
}

impl ChaosFault {
    /// The wire label (`latency` / `stall` / `error` / `drop` / `shed`).
    pub fn label(self) -> &'static str {
        match self {
            ChaosFault::Latency { .. } => "latency",
            ChaosFault::Stall { .. } => "stall",
            ChaosFault::Error { .. } => "error",
            ChaosFault::Drop => "drop",
            ChaosFault::Shed => "shed",
        }
    }

    /// `true` when `self` may inject at `point` (see the module table).
    pub fn valid_at(self, point: ChaosPoint) -> bool {
        matches!(
            (point, self),
            (
                ChaosPoint::Accept,
                ChaosFault::Latency { .. } | ChaosFault::Stall { .. } | ChaosFault::Drop
            ) | (
                ChaosPoint::Admission,
                ChaosFault::Latency { .. } | ChaosFault::Error { .. } | ChaosFault::Shed
            ) | (
                ChaosPoint::Engine,
                ChaosFault::Latency { .. } | ChaosFault::Stall { .. } | ChaosFault::Error { .. }
            ) | (
                ChaosPoint::Respond,
                ChaosFault::Latency { .. } | ChaosFault::Drop
            )
        )
    }
}

/// One injection rule: fire `fault` at `point` for the fraction
/// `probability` of arrivals, at most `max` times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosRule {
    /// Where the fault injects.
    pub point: ChaosPoint,
    /// What happens when it fires.
    pub fault: ChaosFault,
    /// Fraction of arrivals that fire, in `[0, 1]`.
    pub probability: f64,
    /// Total-firings cap; `None` is unlimited.
    pub max: Option<u64>,
}

/// A parsed, validated chaos spec: a seed plus a rule list.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// The schedule seed; equal seeds + equal traffic ⇒ equal faults.
    pub seed: u64,
    /// The rules, in file order (first matching rule wins per arrival).
    pub rules: Vec<ChaosRule>,
}

impl ChaosConfig {
    /// Parses and validates a chaos spec document.
    ///
    /// # Errors
    ///
    /// A typed [`ChaosError`] naming the JSON path of the first
    /// problem: invalid JSON, unknown keys, missing or mistyped
    /// fields, out-of-range probabilities, or a fault the named point
    /// does not accept.
    pub fn parse(text: &str) -> Result<ChaosConfig, ChaosError> {
        let doc = json::parse(text).map_err(|e| ChaosError::Json(e.to_string()))?;
        let Json::Obj(top) = &doc else {
            return Err(schema("$", "chaos spec must be a JSON object"));
        };
        for key in top.keys() {
            if key != "seed" && key != "rules" {
                return Err(ChaosError::UnknownKey {
                    path: "$".to_owned(),
                    key: key.clone(),
                });
            }
        }
        let seed = require_u64(&doc, "$", "seed")?;
        if seed > MAX_SEED {
            return Err(schema("$.seed", "seed must be at most 2^53"));
        }
        let rules_json = doc
            .get("rules")
            .ok_or_else(|| schema("$", "missing required key \"rules\""))?;
        let Json::Arr(items) = rules_json else {
            return Err(schema("$.rules", "rules must be an array"));
        };
        let mut rules = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            rules.push(parse_rule(item, &format!("rules[{i}]"))?);
        }
        Ok(ChaosConfig { seed, rules })
    }

    /// Reads and parses a chaos spec file.
    ///
    /// # Errors
    ///
    /// [`ChaosError::Io`] when the file cannot be read, otherwise as
    /// [`ChaosConfig::parse`].
    pub fn load(path: &str) -> Result<ChaosConfig, ChaosError> {
        let text = std::fs::read_to_string(path).map_err(|e| ChaosError::Io {
            path: path.to_owned(),
            message: e.to_string(),
        })?;
        ChaosConfig::parse(&text)
    }
}

fn schema(path: &str, message: &str) -> ChaosError {
    ChaosError::Schema {
        path: path.to_owned(),
        message: message.to_owned(),
    }
}

fn require_u64(obj: &Json, path: &str, key: &str) -> Result<u64, ChaosError> {
    let value = obj
        .get(key)
        .ok_or_else(|| schema(path, &format!("missing required key {key:?}")))?;
    value
        .as_u64()
        .ok_or_else(|| schema(&format!("{path}.{key}"), "must be a non-negative integer"))
}

fn parse_rule(item: &Json, path: &str) -> Result<ChaosRule, ChaosError> {
    let Json::Obj(fields) = item else {
        return Err(schema(path, "each rule must be a JSON object"));
    };
    const KNOWN: [&str; 6] = ["point", "fault", "probability", "ms", "status", "max"];
    for key in fields.keys() {
        if !KNOWN.contains(&key.as_str()) {
            return Err(ChaosError::UnknownKey {
                path: path.to_owned(),
                key: key.clone(),
            });
        }
    }
    let point_label = item
        .get("point")
        .ok_or_else(|| schema(path, "missing required key \"point\""))?
        .as_str()
        .ok_or_else(|| schema(&format!("{path}.point"), "must be a string"))?;
    let point = ChaosPoint::parse(point_label).ok_or_else(|| {
        schema(
            &format!("{path}.point"),
            "must be one of \"accept\", \"admission\", \"engine\", \"respond\"",
        )
    })?;
    let fault_label = item
        .get("fault")
        .ok_or_else(|| schema(path, "missing required key \"fault\""))?
        .as_str()
        .ok_or_else(|| schema(&format!("{path}.fault"), "must be a string"))?;
    let needs_ms = matches!(fault_label, "latency" | "stall");
    let needs_status = fault_label == "error";
    if !needs_ms && fields.contains_key("ms") {
        return Err(schema(
            &format!("{path}.ms"),
            "only latency and stall faults take \"ms\"",
        ));
    }
    if !needs_status && fields.contains_key("status") {
        return Err(schema(
            &format!("{path}.status"),
            "only error faults take \"status\"",
        ));
    }
    let fault = match fault_label {
        "latency" => ChaosFault::Latency {
            ms: require_u64(item, path, "ms")?,
        },
        "stall" => ChaosFault::Stall {
            ms: require_u64(item, path, "ms")?,
        },
        "error" => {
            let status = require_u64(item, path, "status")?;
            if !(400..600).contains(&status) {
                return Err(schema(
                    &format!("{path}.status"),
                    "injected status must be 4xx or 5xx",
                ));
            }
            ChaosFault::Error {
                status: status as u16,
            }
        }
        "drop" => ChaosFault::Drop,
        "shed" => ChaosFault::Shed,
        _ => {
            return Err(schema(
                &format!("{path}.fault"),
                "must be one of \"latency\", \"stall\", \"error\", \"drop\", \"shed\"",
            ))
        }
    };
    if !fault.valid_at(point) {
        return Err(schema(
            path,
            &format!(
                "fault \"{}\" cannot inject at point \"{}\"",
                fault.label(),
                point.label()
            ),
        ));
    }
    let probability = item
        .get("probability")
        .ok_or_else(|| schema(path, "missing required key \"probability\""))?
        .as_f64()
        .ok_or_else(|| schema(&format!("{path}.probability"), "must be a number"))?;
    if !(0.0..=1.0).contains(&probability) {
        return Err(schema(
            &format!("{path}.probability"),
            "must be within [0, 1]",
        ));
    }
    let max = match item.get("max") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| schema(&format!("{path}.max"), "must be a non-negative integer"))?,
        ),
    };
    Ok(ChaosRule {
        point,
        fault,
        probability,
        max,
    })
}

/// What the request path must do after asking the engine about an
/// arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Sleep, then continue normally (latency and stall faults).
    Delay(Duration),
    /// Answer with this injected HTTP status.
    Fail {
        /// The injected status code.
        status: u16,
    },
    /// Close the connection without answering.
    Drop,
    /// Shed through the admission gate (typed 503, chaos reason).
    Shed,
}

/// The runtime side of a chaos spec: per-point arrival counters plus
/// the deterministic fire/skip decision.
pub struct ChaosEngine {
    config: ChaosConfig,
    arrivals: [AtomicU64; 4],
    fired: Vec<AtomicU64>,
}

impl ChaosEngine {
    /// An engine for `config`, all counters at zero.
    pub fn new(config: ChaosConfig) -> ChaosEngine {
        let fired = config.rules.iter().map(|_| AtomicU64::new(0)).collect();
        ChaosEngine {
            config,
            arrivals: [const { AtomicU64::new(0) }; 4],
            fired,
        }
    }

    /// The spec this engine runs.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// Registers one arrival at `point` and decides whether it faults.
    ///
    /// The first rule (in file order) whose hash fires and whose `max`
    /// cap is not exhausted wins; its action is returned and counted
    /// as `serve.chaos.<point>.<fault>`.
    pub fn decide(&self, point: ChaosPoint) -> Option<ChaosAction> {
        let n = self.arrivals[point.index()].fetch_add(1, Ordering::SeqCst);
        for (rule_idx, rule) in self.config.rules.iter().enumerate() {
            if rule.point != point {
                continue;
            }
            let mut h = mix64(self.config.seed);
            h = mix64(h ^ point.index() as u64);
            h = mix64(h ^ rule_idx as u64);
            h = mix64(h ^ n);
            if fraction(h) >= rule.probability {
                continue;
            }
            let cap_ok = match rule.max {
                None => {
                    self.fired[rule_idx].fetch_add(1, Ordering::SeqCst);
                    true
                }
                Some(max) => self.fired[rule_idx]
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                        (v < max).then_some(v + 1)
                    })
                    .is_ok(),
            };
            if !cap_ok {
                continue;
            }
            hpcfail_obs::counter(&format!(
                "serve.chaos.{}.{}",
                point.label(),
                rule.fault.label()
            ))
            .inc();
            return Some(match rule.fault {
                ChaosFault::Latency { ms } | ChaosFault::Stall { ms } => {
                    ChaosAction::Delay(Duration::from_millis(ms))
                }
                ChaosFault::Error { status } => ChaosAction::Fail { status },
                ChaosFault::Drop => ChaosAction::Drop,
                ChaosFault::Shed => ChaosAction::Shed,
            });
        }
        None
    }

    /// Arrivals registered at `point` so far.
    pub fn arrivals(&self, point: ChaosPoint) -> u64 {
        self.arrivals[point.index()].load(Ordering::SeqCst)
    }

    /// Firings per rule, in rule order.
    pub fn fired(&self) -> Vec<u64> {
        self.fired
            .iter()
            .map(|c| c.load(Ordering::SeqCst))
            .collect()
    }
}

impl fmt::Debug for ChaosEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaosEngine")
            .field("seed", &self.config.seed)
            .field("rules", &self.config.rules.len())
            .field("fired", &self.fired())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(text: &str) -> ChaosConfig {
        ChaosConfig::parse(text).expect("valid spec")
    }

    #[test]
    fn parses_a_full_spec() {
        let config = spec(
            r#"{
              "seed": 7,
              "rules": [
                {"point": "accept", "fault": "drop", "probability": 0.1, "max": 3},
                {"point": "engine", "fault": "latency", "probability": 0.5, "ms": 20},
                {"point": "admission", "fault": "error", "probability": 0.25, "status": 503},
                {"point": "admission", "fault": "shed", "probability": 1.0},
                {"point": "respond", "fault": "drop", "probability": 0.0}
              ]
            }"#,
        );
        assert_eq!(config.seed, 7);
        assert_eq!(config.rules.len(), 5);
        assert_eq!(config.rules[0].max, Some(3));
        assert_eq!(config.rules[1].fault, ChaosFault::Latency { ms: 20 });
        assert_eq!(config.rules[2].fault, ChaosFault::Error { status: 503 });
    }

    #[test]
    fn rejects_schema_drift_with_paths() {
        let cases: [(&str, &str); 8] = [
            (r#"{"rules": []}"#, "seed"),
            (r#"{"seed": 1, "rules": [], "surprise": 1}"#, "surprise"),
            (
                r#"{"seed": 1, "rules": [{"point": "nowhere", "fault": "drop", "probability": 0.1}]}"#,
                "rules[0].point",
            ),
            (
                r#"{"seed": 1, "rules": [{"point": "accept", "fault": "explode", "probability": 0.1}]}"#,
                "rules[0].fault",
            ),
            (
                r#"{"seed": 1, "rules": [{"point": "accept", "fault": "drop", "probability": 1.5}]}"#,
                "rules[0].probability",
            ),
            (
                r#"{"seed": 1, "rules": [{"point": "engine", "fault": "latency", "probability": 0.1}]}"#,
                "ms",
            ),
            (
                r#"{"seed": 1, "rules": [{"point": "engine", "fault": "error", "probability": 0.1, "status": 200}]}"#,
                "rules[0].status",
            ),
            (
                r#"{"seed": 1, "rules": [{"point": "accept", "fault": "drop", "probability": 0.1, "ms": 5}]}"#,
                "rules[0].ms",
            ),
        ];
        for (text, needle) in cases {
            let err = ChaosConfig::parse(text).expect_err(text).to_string();
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
    }

    #[test]
    fn rejects_faults_the_point_does_not_accept() {
        for (point, fault, extra) in [
            ("accept", "error", r#", "status": 500"#),
            ("accept", "shed", ""),
            ("admission", "stall", r#", "ms": 5"#),
            ("admission", "drop", ""),
            ("engine", "drop", ""),
            ("engine", "shed", ""),
            ("respond", "error", r#", "status": 500"#),
            ("respond", "stall", r#", "ms": 5"#),
            ("respond", "shed", ""),
        ] {
            let text = format!(
                r#"{{"seed": 1, "rules": [{{"point": "{point}", "fault": "{fault}", "probability": 0.5{extra}}}]}}"#
            );
            let err = ChaosConfig::parse(&text).expect_err(&text).to_string();
            assert!(
                err.contains("cannot inject"),
                "{point}/{fault}: got {err:?}"
            );
        }
    }

    #[test]
    fn schedule_is_a_pure_function_of_seed_and_arrival() {
        let text = r#"{
          "seed": 42,
          "rules": [
            {"point": "engine", "fault": "error", "probability": 0.3, "status": 500},
            {"point": "engine", "fault": "latency", "probability": 0.3, "ms": 1}
          ]
        }"#;
        let a = ChaosEngine::new(spec(text));
        let b = ChaosEngine::new(spec(text));
        let schedule_a: Vec<_> = (0..500).map(|_| a.decide(ChaosPoint::Engine)).collect();
        let schedule_b: Vec<_> = (0..500).map(|_| b.decide(ChaosPoint::Engine)).collect();
        assert_eq!(schedule_a, schedule_b);
        assert_eq!(a.fired(), b.fired());
        let fails = schedule_a
            .iter()
            .filter(|d| matches!(d, Some(ChaosAction::Fail { .. })))
            .count();
        // p=0.3 over 500 arrivals: the schedule must be neither empty
        // nor saturated, and the first rule shadows the second.
        assert!((100..200).contains(&fails), "{fails} fails");
        assert!(schedule_a.iter().any(|d| d.is_none()));
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let rule = r#""rules": [{"point": "accept", "fault": "drop", "probability": 0.5}]"#;
        let a = ChaosEngine::new(spec(&format!(r#"{{"seed": 1, {rule}}}"#)));
        let b = ChaosEngine::new(spec(&format!(r#"{{"seed": 2, {rule}}}"#)));
        let schedule_a: Vec<_> = (0..256).map(|_| a.decide(ChaosPoint::Accept)).collect();
        let schedule_b: Vec<_> = (0..256).map(|_| b.decide(ChaosPoint::Accept)).collect();
        assert_ne!(schedule_a, schedule_b);
    }

    #[test]
    fn schedule_is_independent_of_arrival_interleaving() {
        // The *set* of firing arrival ordinals is fixed by the hash;
        // racing threads only change which thread observes which
        // ordinal. Summing fired counts across threads must therefore
        // match the sequential run exactly (no max caps here).
        let text = r#"{
          "seed": 9,
          "rules": [{"point": "admission", "fault": "shed", "probability": 0.2}]
        }"#;
        let sequential = ChaosEngine::new(spec(text));
        for _ in 0..400 {
            sequential.decide(ChaosPoint::Admission);
        }
        let concurrent = ChaosEngine::new(spec(text));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        concurrent.decide(ChaosPoint::Admission);
                    }
                });
            }
        });
        assert_eq!(sequential.fired(), concurrent.fired());
    }

    #[test]
    fn max_caps_total_firings_exactly() {
        let engine = ChaosEngine::new(spec(
            r#"{
              "seed": 3,
              "rules": [{"point": "accept", "fault": "drop", "probability": 1.0, "max": 5}]
            }"#,
        ));
        let fired = (0..100)
            .filter(|_| engine.decide(ChaosPoint::Accept).is_some())
            .count();
        assert_eq!(fired, 5);
        assert_eq!(engine.fired(), vec![5]);
        assert_eq!(engine.arrivals(ChaosPoint::Accept), 100);
    }

    #[test]
    fn zero_probability_never_fires() {
        let engine = ChaosEngine::new(spec(
            r#"{
              "seed": 3,
              "rules": [{"point": "respond", "fault": "drop", "probability": 0.0}]
            }"#,
        ));
        assert!((0..1000).all(|_| engine.decide(ChaosPoint::Respond).is_none()));
    }
}
