//! A tiny blocking HTTP client for the query service.
//!
//! Exists so the CLI (`hpcfail-serve query`) and CI smoke jobs can
//! talk to a server without external tooling like `curl`.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One response, as the client saw it.
#[derive(Debug, Clone)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// Header pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body text.
    pub body: String,
}

impl Response {
    /// First value of the (lower-cased) header `name`.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    timeout: Duration,
}

impl Client {
    /// A client for `addr` (`host:port`) with a 30-second socket
    /// timeout.
    pub fn new(addr: impl Into<String>) -> Self {
        Client {
            addr: addr.into(),
            timeout: Duration::from_secs(30),
        }
    }

    /// Overrides the socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sends a GET.
    ///
    /// # Errors
    ///
    /// Connection or protocol failures.
    pub fn get(&self, path: &str) -> io::Result<Response> {
        self.send("GET", path, None, &[])
    }

    /// Sends a POST with a JSON body and optional extra headers.
    ///
    /// # Errors
    ///
    /// Connection or protocol failures.
    pub fn post(&self, path: &str, body: &str, headers: &[(&str, &str)]) -> io::Result<Response> {
        self.send("POST", path, Some(body.as_bytes()), headers)
    }

    /// Sends a POST with a binary body (trace uploads: `.hpcsnap`
    /// bytes or raw CSV) and optional extra headers.
    ///
    /// # Errors
    ///
    /// Connection or protocol failures.
    pub fn post_bytes(
        &self,
        path: &str,
        body: &[u8],
        headers: &[(&str, &str)],
    ) -> io::Result<Response> {
        self.send("POST", path, Some(body), headers)
    }

    /// Sends a DELETE (trace eviction).
    ///
    /// # Errors
    ///
    /// Connection or protocol failures.
    pub fn delete(&self, path: &str) -> io::Result<Response> {
        self.send("DELETE", path, None, &[])
    }

    fn send(
        &self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        headers: &[(&str, &str)],
    ) -> io::Result<Response> {
        let addr = self.addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "address resolves to nothing")
        })?;
        let stream = TcpStream::connect_timeout(&addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let mut writer = stream.try_clone()?;
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\nconnection: close\r\n",
            self.addr
        );
        for (name, value) in headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        let body = body.unwrap_or(b"");
        head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
        writer.write_all(head.as_bytes())?;
        writer.write_all(body)?;
        writer.flush()?;

        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed status line {status_line:?}"),
                )
            })?;
        let mut response_headers = Vec::new();
        let mut content_length: Option<usize> = None;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line)?;
            let line = line.trim_end_matches(['\r', '\n']);
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_owned();
                if name == "content-length" {
                    content_length = value.parse().ok();
                }
                response_headers.push((name, value));
            }
        }
        let mut body_bytes = Vec::new();
        match content_length {
            Some(n) => {
                body_bytes.resize(n, 0);
                reader.read_exact(&mut body_bytes)?;
            }
            None => {
                reader.read_to_end(&mut body_bytes)?;
            }
        }
        let body = String::from_utf8(body_bytes)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response body"))?;
        Ok(Response {
            status,
            headers: response_headers,
            body,
        })
    }
}
