//! The central route table: one declarative list of every endpoint the
//! server answers, replacing ad-hoc `(method, path)` matching.
//!
//! Two API surfaces resolve onto the same endpoints:
//!
//! * the **versioned, trace-scoped** surface under `/v1` — analysis
//!   endpoints name their trace in the path
//!   (`POST /v1/traces/{name}/query`), registry management lives under
//!   `/v1/traces`, and control endpoints are registry-wide
//!   (`GET /v1/healthz`);
//! * the **legacy** unversioned surface (`POST /query`,
//!   `GET /healthz`, …), which resolves against the
//!   [`DEFAULT_TRACE`] and is marked
//!   [`RouteMatch::legacy`] so the server can attach the deprecation
//!   signal (`x-api-deprecated: true` header; `deprecation: true` body
//!   field on control endpoints whose payloads are extensible).
//!
//! Unknown paths resolve to a typed 404 and known paths with the wrong
//! method to a typed 405 (listing the allowed methods), so the error
//! surface is enumerable — see the table test below, which walks every
//! `(method, path)` pair.

use crate::registry::DEFAULT_TRACE;

/// Everything the server can do, independent of which API surface
/// (versioned or legacy) the request used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// Liveness + registry + SLO standings.
    Healthz,
    /// Prometheus text exposition.
    Metrics,
    /// The request-kind taxonomy.
    Requests,
    /// Drain and stop the server.
    Shutdown,
    /// One analysis request against one trace.
    Query,
    /// A JSON array of requests against one trace.
    Batch,
    /// List registered traces.
    TraceList,
    /// Upload (CSV or `.hpcsnap`) into a named slot.
    TraceUpload,
    /// One trace's registry entry.
    TraceShow,
    /// Evict a named trace.
    TraceDelete,
}

impl Endpoint {
    /// `true` for the endpoints that run analysis traffic — the ones
    /// admission control and the respond-point chaos injection apply
    /// to (`/healthz`, `/metrics` etc. must stay observable during a
    /// storm).
    pub fn is_analysis(self) -> bool {
        matches!(self, Endpoint::Query | Endpoint::Batch)
    }
}

/// A successfully routed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteMatch {
    /// The endpoint to dispatch to.
    pub endpoint: Endpoint,
    /// The trace name bound from the path (or the default trace for
    /// legacy analysis endpoints); `None` for registry-wide endpoints.
    pub trace: Option<String>,
    /// `true` when the request came in over the unversioned legacy
    /// surface.
    pub legacy: bool,
}

/// The routing outcome for a `(method, path)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Routed {
    /// Dispatch to an endpoint.
    Matched(RouteMatch),
    /// The path exists, the method does not: a typed 405 listing what
    /// would have worked.
    MethodNotAllowed(Vec<&'static str>),
    /// No route knows the path: a typed 404.
    NotFound,
}

/// One row of the route table. Patterns are `/`-separated literals
/// with `{name}` binding a trace-name segment.
struct RouteSpec {
    method: &'static str,
    pattern: &'static str,
    endpoint: Endpoint,
    legacy: bool,
}

const fn v1(method: &'static str, pattern: &'static str, endpoint: Endpoint) -> RouteSpec {
    RouteSpec {
        method,
        pattern,
        endpoint,
        legacy: false,
    }
}

const fn legacy(method: &'static str, pattern: &'static str, endpoint: Endpoint) -> RouteSpec {
    RouteSpec {
        method,
        pattern,
        endpoint,
        legacy: true,
    }
}

/// The route table. Order only matters for readability — patterns are
/// disjoint.
const ROUTES: &[RouteSpec] = &[
    v1("GET", "/v1/healthz", Endpoint::Healthz),
    v1("GET", "/v1/metrics", Endpoint::Metrics),
    v1("GET", "/v1/requests", Endpoint::Requests),
    v1("POST", "/v1/shutdown", Endpoint::Shutdown),
    v1("GET", "/v1/traces", Endpoint::TraceList),
    v1("POST", "/v1/traces/{name}", Endpoint::TraceUpload),
    v1("GET", "/v1/traces/{name}", Endpoint::TraceShow),
    v1("DELETE", "/v1/traces/{name}", Endpoint::TraceDelete),
    v1("POST", "/v1/traces/{name}/query", Endpoint::Query),
    v1("POST", "/v1/traces/{name}/batch", Endpoint::Batch),
    legacy("GET", "/healthz", Endpoint::Healthz),
    legacy("GET", "/metrics", Endpoint::Metrics),
    legacy("GET", "/requests", Endpoint::Requests),
    legacy("POST", "/shutdown", Endpoint::Shutdown),
    legacy("POST", "/query", Endpoint::Query),
    legacy("POST", "/batch", Endpoint::Batch),
];

/// Matches `path` against `pattern`, returning the bound `{name}`
/// segment (if the pattern has one) on success.
fn match_pattern(pattern: &str, path: &str) -> Option<Option<String>> {
    let mut bound = None;
    let mut want = pattern.split('/');
    let mut got = path.split('/');
    loop {
        match (want.next(), got.next()) {
            (None, None) => return Some(bound),
            (Some("{name}"), Some(segment)) if !segment.is_empty() => {
                bound = Some(segment.to_owned());
            }
            (Some(expect), Some(segment)) if expect == segment => {}
            _ => return None,
        }
    }
}

/// Resolves one `(method, path)` pair against the route table.
pub fn resolve(method: &str, path: &str) -> Routed {
    let mut allowed: Vec<&'static str> = Vec::new();
    for spec in ROUTES {
        let Some(bound) = match_pattern(spec.pattern, path) else {
            continue;
        };
        if spec.method != method {
            if !allowed.contains(&spec.method) {
                allowed.push(spec.method);
            }
            continue;
        }
        let trace = match spec.endpoint {
            Endpoint::Query
            | Endpoint::Batch
            | Endpoint::TraceUpload
            | Endpoint::TraceShow
            | Endpoint::TraceDelete => Some(bound.unwrap_or_else(|| DEFAULT_TRACE.to_owned())),
            _ => None,
        };
        return Routed::Matched(RouteMatch {
            endpoint: spec.endpoint,
            trace,
            legacy: spec.legacy,
        });
    }
    if allowed.is_empty() {
        Routed::NotFound
    } else {
        Routed::MethodNotAllowed(allowed)
    }
}

/// The path hint for 404 bodies.
pub const KNOWN_PATHS_HINT: &str = "unknown path; try /v1/healthz, /v1/metrics, /v1/requests, \
     /v1/traces, /v1/traces/{name}, /v1/traces/{name}/query, /v1/traces/{name}/batch, \
     /v1/shutdown (legacy unversioned forms also answer)";

#[cfg(test)]
mod tests {
    use super::*;

    fn matched(method: &str, path: &str) -> RouteMatch {
        match resolve(method, path) {
            Routed::Matched(m) => m,
            other => panic!("{method} {path} did not match: {other:?}"),
        }
    }

    /// The satellite-mandated table walk: every (method, path) pair in
    /// the product of known methods × representative paths resolves to
    /// exactly the documented outcome.
    #[test]
    fn every_method_path_pair_resolves_as_documented() {
        let methods = ["GET", "POST", "DELETE", "PUT", "HEAD"];
        // (path, per-method expected endpoint, allowed methods for 405)
        type Row = (
            &'static str,
            &'static [(&'static str, Endpoint)],
            &'static [&'static str],
        );
        let table: &[Row] = &[
            ("/v1/healthz", &[("GET", Endpoint::Healthz)], &["GET"]),
            ("/v1/metrics", &[("GET", Endpoint::Metrics)], &["GET"]),
            ("/v1/requests", &[("GET", Endpoint::Requests)], &["GET"]),
            ("/v1/shutdown", &[("POST", Endpoint::Shutdown)], &["POST"]),
            ("/v1/traces", &[("GET", Endpoint::TraceList)], &["GET"]),
            (
                "/v1/traces/lanl",
                &[
                    ("POST", Endpoint::TraceUpload),
                    ("GET", Endpoint::TraceShow),
                    ("DELETE", Endpoint::TraceDelete),
                ],
                &["POST", "GET", "DELETE"],
            ),
            (
                "/v1/traces/lanl/query",
                &[("POST", Endpoint::Query)],
                &["POST"],
            ),
            (
                "/v1/traces/lanl/batch",
                &[("POST", Endpoint::Batch)],
                &["POST"],
            ),
            ("/healthz", &[("GET", Endpoint::Healthz)], &["GET"]),
            ("/metrics", &[("GET", Endpoint::Metrics)], &["GET"]),
            ("/requests", &[("GET", Endpoint::Requests)], &["GET"]),
            ("/shutdown", &[("POST", Endpoint::Shutdown)], &["POST"]),
            ("/query", &[("POST", Endpoint::Query)], &["POST"]),
            ("/batch", &[("POST", Endpoint::Batch)], &["POST"]),
        ];
        for (path, expects, allowed) in table {
            for method in methods {
                match expects.iter().find(|(m, _)| *m == method) {
                    Some((_, endpoint)) => {
                        let m = matched(method, path);
                        assert_eq!(m.endpoint, *endpoint, "{method} {path}");
                        assert_eq!(
                            m.legacy,
                            !path.starts_with("/v1/"),
                            "{method} {path} legacy flag"
                        );
                    }
                    None => match resolve(method, path) {
                        Routed::MethodNotAllowed(methods_seen) => {
                            assert_eq!(&methods_seen, allowed, "{method} {path}");
                        }
                        other => panic!("{method} {path}: expected 405, got {other:?}"),
                    },
                }
            }
        }
        // Paths no route knows are 404 for every method.
        for path in ["/", "/nope", "/v1", "/v1/traces/a/b/c", "/v2/healthz"] {
            for method in methods {
                assert_eq!(resolve(method, path), Routed::NotFound, "{method} {path}");
            }
        }
    }

    #[test]
    fn trace_names_bind_from_the_path() {
        assert_eq!(
            matched("POST", "/v1/traces/fleet-100k/query")
                .trace
                .as_deref(),
            Some("fleet-100k")
        );
        assert_eq!(
            matched("DELETE", "/v1/traces/lanl96").trace.as_deref(),
            Some("lanl96")
        );
        // Legacy analysis endpoints bind the default trace...
        assert_eq!(matched("POST", "/query").trace.as_deref(), Some("default"));
        assert_eq!(matched("POST", "/batch").trace.as_deref(), Some("default"));
        // ...and control endpoints are registry-wide on both surfaces.
        assert_eq!(matched("GET", "/healthz").trace, None);
        assert_eq!(matched("GET", "/v1/healthz").trace, None);
    }

    #[test]
    fn empty_name_segments_do_not_match() {
        assert_eq!(resolve("POST", "/v1/traces//query"), Routed::NotFound);
        // "/v1/traces/" has a trailing empty segment: not a name.
        assert_eq!(resolve("POST", "/v1/traces/"), Routed::NotFound);
    }

    #[test]
    fn legacy_and_v1_share_endpoints() {
        for (legacy_path, v1_path) in [
            ("/healthz", "/v1/healthz"),
            ("/metrics", "/v1/metrics"),
            ("/requests", "/v1/requests"),
        ] {
            let l = matched("GET", legacy_path);
            let v = matched("GET", v1_path);
            assert_eq!(l.endpoint, v.endpoint);
            assert!(l.legacy && !v.legacy);
        }
    }
}
