//! The structured JSONL access log.
//!
//! One line per served request — valid JSON, keys sorted, no embedded
//! newlines — so the log is greppable *and* machine-parseable without
//! a log-shipping stack. Every line carries the request's trace id,
//! which is also echoed to the client in the `x-trace-id` header, so a
//! client-observed response joins to its server-side line (and, with
//! `x-trace: 1`, to its span tree) by a single id.
//!
//! The writer enforces a size cap: when appending a line would push
//! the file past `max_bytes`, the current file is renamed to
//! `<path>.1` (replacing any previous `.1`) and a fresh file is
//! started. One level of rotation bounds disk use at roughly
//! `2 * max_bytes` without a retention daemon.

use hpcfail_obs::json::Json;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Default rotation threshold: 16 MiB per file.
pub const DEFAULT_MAX_BYTES: u64 = 16 * 1024 * 1024;

/// One access-log record. Field names are the JSON keys; serialization
/// sorts them, so the wire order is alphabetical.
#[derive(Debug, Clone)]
pub struct AccessEntry {
    /// Trace id, 16 lowercase hex digits (all zeros under `no-obs`).
    pub trace_id: String,
    /// Request method, `-` when the request never parsed.
    pub method: String,
    /// Request path, `-` when the request never parsed.
    pub path: String,
    /// The request-kind label used for metrics (`trace-summary`,
    /// `batch`, `healthz`, `http-error`, ...).
    pub kind: String,
    /// Response status code.
    pub status: u16,
    /// Wall latency, microseconds.
    pub latency_us: u64,
    /// `hit` / `miss` / `coalesced`, or `-` when caching never applied.
    pub cache: String,
    /// The effective deadline, milliseconds.
    pub deadline_ms: u64,
    /// Response body size, bytes.
    pub bytes_out: u64,
    /// The shed reason (`queue_full`, `brownout`, ...) when admission
    /// rejected the request; `-` otherwise.
    pub shed: String,
}

impl AccessEntry {
    /// The single JSONL line for this entry (no trailing newline).
    pub fn to_line(&self) -> String {
        Json::obj([
            ("bytes_out", Json::Num(self.bytes_out as f64)),
            ("cache", Json::Str(self.cache.clone())),
            ("deadline_ms", Json::Num(self.deadline_ms as f64)),
            ("kind", Json::Str(self.kind.clone())),
            ("latency_us", Json::Num(self.latency_us as f64)),
            ("method", Json::Str(self.method.clone())),
            ("path", Json::Str(self.path.clone())),
            ("shed", Json::Str(self.shed.clone())),
            ("status", Json::Num(f64::from(self.status))),
            ("trace_id", Json::Str(self.trace_id.clone())),
        ])
        .compact()
    }
}

struct LogState {
    file: File,
    bytes: u64,
}

/// A size-capped, thread-safe JSONL writer.
pub struct AccessLog {
    path: PathBuf,
    max_bytes: u64,
    state: Mutex<LogState>,
}

impl AccessLog {
    /// Opens (appending) the log at `path`, rotating once the file
    /// would exceed `max_bytes`.
    ///
    /// # Errors
    ///
    /// I/O errors creating or statting the file.
    pub fn open(path: impl Into<PathBuf>, max_bytes: u64) -> io::Result<AccessLog> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let bytes = file.metadata()?.len();
        Ok(AccessLog {
            path,
            max_bytes: max_bytes.max(1),
            state: Mutex::new(LogState { file, bytes }),
        })
    }

    /// The live log path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The rotated path (`<path>.1`).
    pub fn rotated_path(&self) -> PathBuf {
        let mut name = self.path.as_os_str().to_owned();
        name.push(".1");
        PathBuf::from(name)
    }

    /// Appends one line; rotates first when the line would overflow
    /// the cap. Errors are swallowed: losing a log line must never
    /// fail a request.
    pub fn log(&self, entry: &AccessEntry) {
        let mut line = entry.to_line();
        line.push('\n');
        let Ok(mut state) = self.state.lock() else {
            return;
        };
        if state.bytes > 0 && state.bytes + line.len() as u64 > self.max_bytes {
            // Replace any previous .1; one rotation level is the cap.
            let _ = std::fs::rename(&self.path, self.rotated_path());
            match OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)
            {
                Ok(file) => {
                    state.file = file;
                    state.bytes = 0;
                }
                Err(_) => return,
            }
        }
        if state.file.write_all(line.as_bytes()).is_ok() {
            state.bytes += line.len() as u64;
            let _ = state.file.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(kind: &str, bytes_out: u64) -> AccessEntry {
        AccessEntry {
            trace_id: "00000000000000ab".to_owned(),
            method: "POST".to_owned(),
            path: "/query".to_owned(),
            kind: kind.to_owned(),
            status: 200,
            latency_us: 1500,
            cache: "miss".to_owned(),
            deadline_ms: 10_000,
            bytes_out,
            shed: "-".to_owned(),
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("hpcfail-serve-accesslog");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(format!("{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn lines_are_single_line_valid_json() {
        let line = entry("trace-summary", 64).to_line();
        assert!(!line.contains('\n'));
        let parsed = hpcfail_obs::json::parse(&line).expect("valid JSON");
        assert_eq!(
            parsed.get("kind").and_then(Json::as_str),
            Some("trace-summary")
        );
        assert_eq!(parsed.get("status").and_then(Json::as_u64), Some(200));
        assert_eq!(
            parsed.get("trace_id").and_then(Json::as_str),
            Some("00000000000000ab")
        );
    }

    #[test]
    fn rotation_caps_the_live_file() {
        let path = temp_path("rotate");
        let rotated = {
            let log = AccessLog::open(&path, 256).expect("open");
            std::fs::remove_file(log.rotated_path()).ok();
            for i in 0..8 {
                log.log(&entry("healthz", i));
            }
            log.rotated_path()
        };
        let live = std::fs::read_to_string(&path).expect("live file");
        assert!(live.len() as u64 <= 256, "live stays under cap");
        assert!(rotated.exists(), "rotation happened");
        // Every line in both surviving files is intact JSON — rotation
        // never tears a line in half.
        let old = std::fs::read_to_string(&rotated).expect("rotated file");
        let mut total = 0;
        for line in live.lines().chain(old.lines()) {
            hpcfail_obs::json::parse(line).expect("each line parses");
            total += 1;
        }
        assert!(total >= 2, "live + rotated both hold lines, got {total}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&rotated).ok();
    }
}
