//! The `hpcfail-serve top` dashboard: polls `/metrics` and renders a
//! terminal view of the service — request rate, in-flight count,
//! cache hit rate, per-kind windowed p99 and SLO burn.
//!
//! The renderer is a pure function from two consecutive scrapes to a
//! text frame, so tests (and the CI metrics job) drive the exact
//! production path with `frames: Some(1)` and a plain writer instead
//! of a TTY.

use crate::client::Client;
use crate::promtext::{self, Scrape};
use std::io::{self, Write};
use std::time::Duration;

/// Dashboard configuration.
#[derive(Debug, Clone)]
pub struct TopOptions {
    /// Server address, `host:port`.
    pub addr: String,
    /// Poll interval.
    pub interval: Duration,
    /// Frames to render before returning; `None` runs until the
    /// server goes away.
    pub frames: Option<u64>,
    /// Clear the screen between frames (off for piped output).
    pub clear: bool,
}

/// One kind's row in the dashboard.
#[derive(Debug, Clone, PartialEq)]
pub struct KindRow {
    /// The kind label.
    pub kind: String,
    /// Lifetime request count for the kind.
    pub requests: f64,
    /// Windowed p99 latency, milliseconds.
    pub window_p99_ms: f64,
    /// SLO burn (p99 / budget); negative when the server exports no
    /// SLO series for the kind.
    pub burn: f64,
    /// Windowed 5xx rate.
    pub error_rate: f64,
}

/// Everything one frame shows, extracted from a scrape pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Total requests served so far.
    pub total_requests: f64,
    /// Requests per second since the previous scrape (0 on the first).
    pub req_per_s: f64,
    /// Requests currently in flight.
    pub inflight: f64,
    /// hits / (hits + misses + coalesced), 0 with no traffic.
    pub cache_hit_rate: f64,
    /// 1.0 while every kind meets its SLO.
    pub slo_healthy: bool,
    /// Per-kind rows, busiest first.
    pub kinds: Vec<KindRow>,
}

/// Extracts a frame from the current scrape, using the previous one
/// (if any) for rates.
pub fn frame_from(scrape: &Scrape, previous: Option<&Scrape>, interval: Duration) -> Frame {
    let total = scrape.value("serve_requests_total", &[]).unwrap_or(0.0);
    let req_per_s = match previous {
        Some(prev) if interval.as_secs_f64() > 0.0 => {
            let before = prev.value("serve_requests_total", &[]).unwrap_or(0.0);
            ((total - before) / interval.as_secs_f64()).max(0.0)
        }
        _ => 0.0,
    };
    let hits = scrape
        .value("serve_cache_requests_total", &[("result", "hit")])
        .unwrap_or(0.0);
    let lookups = hits
        + scrape
            .value("serve_cache_requests_total", &[("result", "miss")])
            .unwrap_or(0.0)
        + scrape
            .value("serve_cache_requests_total", &[("result", "coalesced")])
            .unwrap_or(0.0);
    let mut kinds: Vec<KindRow> = scrape
        .series("serve_requests_by_kind_total")
        .filter_map(|sample| {
            let kind = sample.label("kind")?.to_owned();
            Some(KindRow {
                window_p99_ms: scrape
                    .value(
                        "serve_window_latency_ns",
                        &[("kind", &kind), ("quantile", "0.99")],
                    )
                    .unwrap_or(0.0)
                    / 1e6,
                burn: scrape
                    .value("serve_slo_latency_burn", &[("kind", &kind)])
                    .unwrap_or(-1.0),
                error_rate: scrape
                    .value("serve_slo_error_rate", &[("kind", &kind)])
                    .unwrap_or(0.0),
                requests: sample.value,
                kind,
            })
        })
        .collect();
    kinds.sort_by(|a, b| {
        b.requests
            .partial_cmp(&a.requests)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.kind.cmp(&b.kind))
    });
    Frame {
        total_requests: total,
        req_per_s,
        inflight: scrape.value("serve_inflight", &[]).unwrap_or(0.0),
        cache_hit_rate: if lookups > 0.0 { hits / lookups } else { 0.0 },
        slo_healthy: scrape.value("serve_slo_healthy", &[]).unwrap_or(1.0) >= 1.0,
        kinds,
    }
}

/// Renders one frame as text.
pub fn render_frame(frame: &Frame, addr: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "hpcfail-serve top — {addr}\n\
         requests {:>10}   rate {:>8.1}/s   in-flight {:>3}   cache hit {:>5.1}%   slo {}\n\n",
        frame.total_requests as u64,
        frame.req_per_s,
        frame.inflight as u64,
        frame.cache_hit_rate * 100.0,
        if frame.slo_healthy { "ok" } else { "DEGRADED" },
    ));
    out.push_str(&format!(
        "{:<28} {:>10} {:>14} {:>10} {:>8}\n",
        "kind", "requests", "window p99", "burn", "err%"
    ));
    if frame.kinds.is_empty() {
        out.push_str("  (no per-kind traffic yet)\n");
    }
    for row in &frame.kinds {
        let burn = if row.burn < 0.0 {
            "-".to_owned()
        } else {
            format!("{:.2}", row.burn)
        };
        out.push_str(&format!(
            "{:<28} {:>10} {:>11.2} ms {:>10} {:>7.1}%\n",
            row.kind,
            row.requests as u64,
            row.window_p99_ms,
            burn,
            row.error_rate * 100.0
        ));
    }
    out
}

/// Polls `/metrics` and writes frames to `out` until `frames` runs
/// out or the server stops answering.
///
/// # Errors
///
/// The first scrape failing (a later scrape failing ends the loop
/// cleanly — the server presumably shut down).
pub fn run(options: &TopOptions, out: &mut impl Write) -> io::Result<()> {
    let client = Client::new(options.addr.clone())
        .with_timeout(options.interval.max(Duration::from_secs(5)));
    let mut previous: Option<Scrape> = None;
    let mut remaining = options.frames;
    loop {
        let response = match client.get("/metrics") {
            Ok(response) => response,
            Err(err) if previous.is_some() => {
                writeln!(out, "server went away: {err}")?;
                return Ok(());
            }
            Err(err) => return Err(err),
        };
        if response.status != 200 {
            return Err(io::Error::other(format!(
                "/metrics answered {}",
                response.status
            )));
        }
        let scrape = promtext::parse(&response.body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let frame = frame_from(&scrape, previous.as_ref(), options.interval);
        if options.clear {
            out.write_all(b"\x1b[2J\x1b[H")?;
        }
        out.write_all(render_frame(&frame, &options.addr).as_bytes())?;
        out.flush()?;
        previous = Some(scrape);
        if let Some(n) = &mut remaining {
            *n -= 1;
            if *n == 0 {
                return Ok(());
            }
        }
        std::thread::sleep(options.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(total: f64) -> Scrape {
        let text = format!(
            "# TYPE serve_requests_total counter\n\
             serve_requests_total {total}\n\
             # TYPE serve_cache_requests_total counter\n\
             serve_cache_requests_total{{result=\"hit\"}} 30\n\
             serve_cache_requests_total{{result=\"miss\"}} 10\n\
             serve_cache_requests_total{{result=\"coalesced\"}} 0\n\
             # TYPE serve_inflight gauge\n\
             serve_inflight 2\n\
             # TYPE serve_slo_healthy gauge\n\
             serve_slo_healthy 1\n\
             # TYPE serve_requests_by_kind_total counter\n\
             serve_requests_by_kind_total{{kind=\"trace-summary\"}} 25\n\
             serve_requests_by_kind_total{{kind=\"healthz\"}} 5\n\
             # TYPE serve_window_latency_ns summary\n\
             serve_window_latency_ns{{kind=\"trace-summary\",quantile=\"0.99\"}} 4000000\n\
             # TYPE serve_slo_latency_burn gauge\n\
             serve_slo_latency_burn{{kind=\"trace-summary\"}} 0.008\n"
        );
        promtext::parse(&text).expect("fixture parses")
    }

    #[test]
    fn frame_extracts_rates_and_rows() {
        let before = scrape(100.0);
        let after = scrape(160.0);
        let frame = frame_from(&after, Some(&before), Duration::from_secs(2));
        assert_eq!(frame.total_requests, 160.0);
        assert!((frame.req_per_s - 30.0).abs() < 1e-9, "{}", frame.req_per_s);
        assert_eq!(frame.inflight, 2.0);
        assert!((frame.cache_hit_rate - 0.75).abs() < 1e-9);
        assert!(frame.slo_healthy);
        assert_eq!(frame.kinds.len(), 2);
        // Busiest first.
        assert_eq!(frame.kinds[0].kind, "trace-summary");
        assert!((frame.kinds[0].window_p99_ms - 4.0).abs() < 1e-9);
        assert!((frame.kinds[0].burn - 0.008).abs() < 1e-9);
        // No SLO series for healthz: burn renders as '-'.
        assert!(frame.kinds[1].burn < 0.0);
    }

    #[test]
    fn first_frame_has_no_rate() {
        let frame = frame_from(&scrape(50.0), None, Duration::from_secs(1));
        assert_eq!(frame.req_per_s, 0.0);
        assert_eq!(frame.total_requests, 50.0);
    }

    #[test]
    fn render_mentions_every_kind() {
        let frame = frame_from(&scrape(50.0), None, Duration::from_secs(1));
        let text = render_frame(&frame, "127.0.0.1:7070");
        assert!(text.contains("trace-summary"));
        assert!(text.contains("healthz"));
        assert!(text.contains("cache hit  75.0%"), "{text}");
        assert!(text.contains("slo ok"));
    }
}
