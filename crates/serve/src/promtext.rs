//! A strict parser/validator for the Prometheus text exposition
//! format (version 0.0.4).
//!
//! `/metrics` output is only useful if real scrapers accept it, and CI
//! has no Prometheus binary to ask — so this module *is* the checker:
//! it parses a scrape into typed [`Sample`]s and rejects everything
//! the format forbids (bad metric/label names, unparseable values,
//! duplicate series, `# TYPE` lines after samples or repeated per
//! family). The `check-metrics` CLI subcommand, the `top` dashboard
//! and the observability tests all read scrapes through here.

use std::collections::{BTreeMap, BTreeSet};

/// One sample line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The metric name (for summaries this includes the `_count` /
    /// `_sum` suffix).
    pub name: String,
    /// Label pairs, in declaration order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The first value of label `name`.
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// `true` when every pair in `want` appears among this sample's
    /// labels with an equal value.
    pub fn matches(&self, want: &[(String, String)]) -> bool {
        want.iter().all(|(n, v)| self.label(n) == Some(v.as_str()))
    }
}

/// A parsed scrape.
#[derive(Debug, Clone, Default)]
pub struct Scrape {
    /// Every sample, in document order.
    pub samples: Vec<Sample>,
    /// `# TYPE` declarations: family name → type keyword.
    pub types: BTreeMap<String, String>,
}

impl Scrape {
    /// Samples of metric `name`, in document order.
    pub fn series<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Sample> {
        self.samples.iter().filter(move |s| s.name == name)
    }

    /// The value of the unique sample matching `name` and every pair
    /// in `labels`; `None` when absent or ambiguous.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let want: Vec<(String, String)> = labels
            .iter()
            .map(|(n, v)| ((*n).to_owned(), (*v).to_owned()))
            .collect();
        let mut found = None;
        for sample in self.series(name) {
            if sample.matches(&want) {
                if found.is_some() {
                    return None; // ambiguous
                }
                found = Some(sample.value);
            }
        }
        found
    }

    /// The sum over every sample of metric `name`.
    pub fn sum(&self, name: &str) -> f64 {
        self.series(name).map(|s| s.value).sum()
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(text: &str) -> Option<f64> {
    match text {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        other => other.parse().ok(),
    }
}

/// The family a sample belongs to: summary/histogram child names
/// (`x_count`, `x_sum`, `x_bucket`) roll up to their parent when the
/// parent has a `# TYPE`.
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, String>) -> &'a str {
    for suffix in ["_count", "_sum", "_bucket"] {
        if let Some(parent) = name.strip_suffix(suffix) {
            if types.contains_key(parent) {
                return parent;
            }
        }
    }
    name
}

/// Parses label pairs from the text between `{` and `}`.
fn parse_labels(text: &str, line_no: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {line_no}: label without '='"))?;
        let name = rest[..eq].trim();
        if !valid_label_name(name) {
            return Err(format!("line {line_no}: invalid label name {name:?}"));
        }
        rest = rest[eq + 1..].trim_start();
        if !rest.starts_with('"') {
            return Err(format!("line {line_no}: label value must be quoted"));
        }
        // Walk the quoted value, honoring \\, \" and \n escapes.
        let mut value = String::new();
        let mut chars = rest[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    end = Some(i);
                    break;
                }
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    _ => return Err(format!("line {line_no}: bad escape in label value")),
                },
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("line {line_no}: unterminated label value"))?;
        labels.push((name.to_owned(), value));
        rest = rest[1 + end + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err(format!(
                "line {line_no}: expected ',' between labels, got {rest:?}"
            ));
        }
    }
    Ok(labels)
}

/// Parses and validates a full scrape.
///
/// # Errors
///
/// The first format violation, with its line number.
pub fn parse(text: &str) -> Result<Scrape, String> {
    let mut scrape = Scrape::default();
    // Families that already emitted a sample; a TYPE after that is an
    // ordering violation.
    let mut sampled: BTreeSet<String> = BTreeSet::new();
    let mut seen_series: BTreeSet<String> = BTreeSet::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim_end();
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.split_whitespace();
                let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next())
                else {
                    return Err(format!("line {line_no}: malformed TYPE line"));
                };
                if !valid_metric_name(name) {
                    return Err(format!("line {line_no}: invalid metric name {name:?}"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "summary" | "histogram" | "untyped"
                ) {
                    return Err(format!("line {line_no}: unknown metric type {kind:?}"));
                }
                if scrape.types.contains_key(name) {
                    return Err(format!("line {line_no}: duplicate TYPE for {name:?}"));
                }
                if sampled.contains(name) {
                    return Err(format!(
                        "line {line_no}: TYPE for {name:?} after its samples"
                    ));
                }
                scrape.types.insert(name.to_owned(), kind.to_owned());
            }
            // HELP and free comments pass through unchecked.
            continue;
        }

        // A sample: name[{labels}] value [timestamp]
        let (name_part, rest) = match line.find('{') {
            Some(brace) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| format!("line {line_no}: unterminated label set"))?;
                if close < brace {
                    return Err(format!("line {line_no}: mismatched braces"));
                }
                (&line[..brace], {
                    let labels = parse_labels(&line[brace + 1..close], line_no)?;
                    let value_part = line[close + 1..].trim();
                    (labels, value_part)
                })
            }
            None => {
                let mut parts = line.splitn(2, char::is_whitespace);
                let name = parts.next().unwrap_or_default();
                let value_part = parts.next().unwrap_or_default().trim();
                (name, (Vec::new(), value_part))
            }
        };
        let (labels, value_part) = rest;
        let name = name_part.trim();
        if !valid_metric_name(name) {
            return Err(format!("line {line_no}: invalid metric name {name:?}"));
        }
        let mut value_fields = value_part.split_whitespace();
        let value_text = value_fields
            .next()
            .ok_or_else(|| format!("line {line_no}: sample without a value"))?;
        let value = parse_value(value_text)
            .ok_or_else(|| format!("line {line_no}: unparseable value {value_text:?}"))?;
        if let Some(ts) = value_fields.next() {
            if ts.parse::<i64>().is_err() {
                return Err(format!("line {line_no}: unparseable timestamp {ts:?}"));
            }
        }
        if value_fields.next().is_some() {
            return Err(format!("line {line_no}: trailing fields after value"));
        }

        let series_key = format!(
            "{name}{{{}}}",
            labels
                .iter()
                .map(|(n, v)| format!("{n}={v:?}"))
                .collect::<Vec<_>>()
                .join(",")
        );
        if !seen_series.insert(series_key.clone()) {
            return Err(format!("line {line_no}: duplicate series {series_key}"));
        }
        sampled.insert(family_of(name, &scrape.types).to_owned());
        scrape.samples.push(Sample {
            name: name.to_owned(),
            labels,
            value,
        });
    }
    Ok(scrape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_realistic_scrape() {
        let text = "\
# HELP serve_requests_total Requests served.
# TYPE serve_requests_total counter
serve_requests_total 42
# TYPE serve_request_latency_ns summary
serve_request_latency_ns{kind=\"trace-summary\",quantile=\"0.99\"} 1500000
serve_request_latency_ns_count{kind=\"trace-summary\"} 10
serve_request_latency_ns_sum{kind=\"trace-summary\"} 9000000
# TYPE serve_inflight gauge
serve_inflight 0
";
        let scrape = parse(text).expect("valid scrape");
        assert_eq!(scrape.types["serve_requests_total"], "counter");
        assert_eq!(scrape.value("serve_requests_total", &[]), Some(42.0));
        assert_eq!(
            scrape.value(
                "serve_request_latency_ns",
                &[("kind", "trace-summary"), ("quantile", "0.99")]
            ),
            Some(1_500_000.0)
        );
        assert_eq!(
            scrape.value(
                "serve_request_latency_ns_count",
                &[("kind", "trace-summary")]
            ),
            Some(10.0)
        );
    }

    #[test]
    fn escapes_in_label_values_round_trip() {
        let text = "m{l=\"a\\\\b\\\"c\\nd\"} 1\n";
        let scrape = parse(text).expect("parses");
        assert_eq!(scrape.samples[0].label("l"), Some("a\\b\"c\nd"));
    }

    #[test]
    fn rejects_format_violations() {
        let bad = [
            "1bad_name 3\n",                             // name starts with a digit
            "m{2bad=\"v\"} 1\n",                         // bad label name
            "m{l=\"v\"} notanumber\n",                   // bad value
            "m{l=\"v\"\n",                               // unterminated labels
            "m{l=\"v} 1\n",                              // unterminated value
            "m 1\nm 2\n",                                // duplicate series
            "m{a=\"1\"} 1\nm{a=\"1\"} 2\n",              // duplicate labeled series
            "# TYPE m counter\n# TYPE m counter\nm 1\n", // duplicate TYPE
            "m 1\n# TYPE m counter\n",                   // TYPE after samples
            "# TYPE m flavor\nm 1\n",                    // unknown type
            "m\n",                                       // missing value
            "m 1 2 3\n",                                 // trailing fields
        ];
        for text in bad {
            assert!(parse(text).is_err(), "must reject: {text:?}");
        }
    }

    #[test]
    fn summary_children_do_not_trip_type_ordering() {
        // _count/_sum samples belong to the declared parent family.
        let text = "\
# TYPE lat summary
lat{quantile=\"0.5\"} 1
lat_count 2
lat_sum 3
";
        let scrape = parse(text).expect("valid");
        assert_eq!(scrape.sum("lat_count"), 2.0);
    }

    #[test]
    fn special_values_parse() {
        let text = "a +Inf\nb -Inf\nc NaN\nd 1e9\n";
        let scrape = parse(text).expect("valid");
        assert_eq!(scrape.value("a", &[]), Some(f64::INFINITY));
        assert!(scrape.value("c", &[]).expect("present").is_nan());
        assert_eq!(scrape.value("d", &[]), Some(1e9));
    }
}
