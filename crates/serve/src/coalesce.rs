//! Coalescing of identical in-flight queries.
//!
//! When several clients ask the same (uncached) question at once, only
//! the first — the *leader* — computes it; the rest — *followers* —
//! block on the leader's flight and share its serialized result. A
//! follower whose deadline expires before the leader finishes gives up
//! and is answered with a degraded 504 instead of holding a worker.

use crate::cache::CacheKey;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// One in-flight computation, shared between leader and followers.
pub struct Flight {
    slot: Mutex<Option<Arc<String>>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    /// Blocks until the leader publishes, or until `deadline` passes.
    pub fn wait(&self, deadline: Instant) -> Option<Arc<String>> {
        let mut slot = self.slot.lock().expect("flight lock");
        loop {
            if let Some(body) = slot.as_ref() {
                return Some(Arc::clone(body));
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, timeout) = self
                .done
                .wait_timeout(slot, deadline - now)
                .expect("flight wait");
            slot = guard;
            if timeout.timed_out() && slot.is_none() {
                return None;
            }
        }
    }

    fn publish(&self, body: Arc<String>) {
        *self.slot.lock().expect("flight lock") = Some(body);
        self.done.notify_all();
    }
}

/// Whether the caller computes or waits.
pub enum Claim {
    /// This caller runs the query and must call
    /// [`Coalescer::complete`] (the guard enforces cleanup on panic).
    Leader(LeaderGuard),
    /// Another caller is already running it; wait on the flight.
    Follower(Arc<Flight>),
}

/// Tracks identical queries currently being computed.
#[derive(Default)]
pub struct Coalescer {
    inflight: Mutex<HashMap<CacheKey, Arc<Flight>>>,
}

/// Leadership of one flight. The holder must finish with
/// [`Coalescer::complete`] (normal path) or [`Coalescer::abandon`]
/// (the query failed); the server wraps leader work in `catch_unwind`
/// so a panicking query still abandons its flight and later identical
/// queries elect a fresh leader.
pub struct LeaderGuard {
    key: CacheKey,
    flight: Arc<Flight>,
}

impl Coalescer {
    /// An empty coalescer.
    pub fn new() -> Self {
        Coalescer::default()
    }

    /// Joins or starts the flight for `key`.
    pub fn claim(&self, key: &CacheKey) -> Claim {
        let mut inflight = self.inflight.lock().expect("coalescer lock");
        if let Some(flight) = inflight.get(key) {
            return Claim::Follower(Arc::clone(flight));
        }
        let flight = Arc::new(Flight::new());
        inflight.insert(key.clone(), Arc::clone(&flight));
        Claim::Leader(LeaderGuard {
            key: key.clone(),
            flight,
        })
    }

    /// Publishes the leader's result to every follower and retires the
    /// flight.
    pub fn complete(&self, guard: LeaderGuard, body: Arc<String>) {
        self.inflight
            .lock()
            .expect("coalescer lock")
            .remove(&guard.key);
        guard.flight.publish(body);
    }

    /// Retires a flight whose leader failed, without publishing.
    /// Followers run out their deadlines.
    pub fn abandon(&self, guard: LeaderGuard) {
        self.inflight
            .lock()
            .expect("coalescer lock")
            .remove(&guard.key);
    }

    /// Flights currently in the air.
    pub fn in_flight(&self) -> usize {
        self.inflight.lock().expect("coalescer lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn key() -> CacheKey {
        ("default".to_owned(), 1, "q".to_owned())
    }

    #[test]
    fn first_claim_leads_second_follows() {
        let c = Coalescer::new();
        let leader = match c.claim(&key()) {
            Claim::Leader(g) => g,
            Claim::Follower(_) => panic!("first claim must lead"),
        };
        let follower = match c.claim(&key()) {
            Claim::Follower(f) => f,
            Claim::Leader(_) => panic!("second claim must follow"),
        };
        assert_eq!(c.in_flight(), 1);
        c.complete(leader, Arc::new("body".to_owned()));
        assert_eq!(c.in_flight(), 0);
        let got = follower.wait(Instant::now() + Duration::from_secs(1));
        assert_eq!(got.as_deref().map(String::as_str), Some("body"));
        // The key is free again.
        assert!(matches!(c.claim(&key()), Claim::Leader(_)));
    }

    #[test]
    fn followers_time_out_without_a_result() {
        let c = Coalescer::new();
        let _leader = match c.claim(&key()) {
            Claim::Leader(g) => g,
            Claim::Follower(_) => panic!("first claim must lead"),
        };
        let follower = match c.claim(&key()) {
            Claim::Follower(f) => f,
            Claim::Leader(_) => panic!("second claim must follow"),
        };
        assert!(follower
            .wait(Instant::now() + Duration::from_millis(20))
            .is_none());
    }

    #[test]
    fn abandon_frees_the_key() {
        let c = Coalescer::new();
        let leader = match c.claim(&key()) {
            Claim::Leader(g) => g,
            Claim::Follower(_) => panic!("first claim must lead"),
        };
        c.abandon(leader);
        assert_eq!(c.in_flight(), 0);
        assert!(matches!(c.claim(&key()), Claim::Leader(_)));
    }

    #[test]
    fn cross_thread_coalescing_delivers_to_all_followers() {
        let c = Arc::new(Coalescer::new());
        let leader = match c.claim(&key()) {
            Claim::Leader(g) => g,
            Claim::Follower(_) => panic!("first claim must lead"),
        };
        let mut joins = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            joins.push(std::thread::spawn(move || match c.claim(&key()) {
                Claim::Follower(f) => f.wait(Instant::now() + Duration::from_secs(5)),
                Claim::Leader(_) => panic!("leader already elected"),
            }));
        }
        // Give followers a moment to park before publishing.
        std::thread::sleep(Duration::from_millis(10));
        c.complete(leader, Arc::new("shared".to_owned()));
        for join in joins {
            let got = join.join().expect("follower thread");
            assert_eq!(got.as_deref().map(String::as_str), Some("shared"));
        }
    }
}
