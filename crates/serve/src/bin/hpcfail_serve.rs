//! The `hpcfail-serve` command: run the analysis query service, query
//! a running one, watch it live, or validate its metrics (no external
//! HTTP tooling needed).
//!
//! ```text
//! hpcfail-serve serve [--addr 127.0.0.1:7070] [--workers 4] [--cache 1024]
//!                     [--scale 0.1] [--seed 42] [--scenario NAME|PATH]
//!                     [--trace DIR [--policy strict|lenient|best-effort]]
//!                     [--snapshot PATH] [--empty] [--name NAME]
//!                     [--max-resident-bytes N]
//!                     [--manifest PATH] [--access-log PATH]
//!                     [--slo-latency-ms N] [--slo-error-rate F] [--slo-window-ms N]
//!                     [--max-inflight N] [--max-queued N] [--shed-policy reject|brownout]
//!                     [--read-timeout-ms N] [--chaos PATH]
//!                     [--inject-panic KIND] [--quiet]
//! hpcfail-serve query --addr HOST:PORT [--trace-name NAME] [--deadline-ms N]
//!                     [--batch] [--trace]
//!                     [--retries N] [--retry-base-ms N] [--retry-seed N] JSON|-
//! hpcfail-serve upload --addr HOST:PORT --name NAME (--csv PATH | --snapshot PATH)
//!                      [--policy strict|lenient|best-effort]
//! hpcfail-serve traces --addr HOST:PORT
//! hpcfail-serve evict --addr HOST:PORT --name NAME
//! hpcfail-serve top --addr HOST:PORT [--interval-ms 1000] [--frames N]
//! hpcfail-serve check-metrics (--addr HOST:PORT | --file PATH) [--require SERIES]...
//! hpcfail-serve requests
//! ```
//!
//! `serve` registers its boot trace under `--name` (default `default`)
//! or starts with an empty registry (`--empty`); further traces arrive
//! over `POST /v1/traces/{name}` (the `upload` subcommand). `query`
//! talks to the versioned trace-scoped API
//! (`/v1/traces/{name}/query`).
//!
//! Exit codes: 0 success, 1 runtime/server error, 2 usage error.

use hpcfail_core::engine::{AnalysisRequest, Engine, REQUEST_KINDS};
use hpcfail_obs::manifest::{git_describe, ManifestSink};
use hpcfail_obs::sink::Sink;
use hpcfail_serve::admission::{AdmissionConfig, ShedPolicy};
use hpcfail_serve::chaos::ChaosConfig;
use hpcfail_serve::client::Client;
use hpcfail_serve::registry::{TraceRegistry, TraceSource, DEFAULT_TRACE};
use hpcfail_serve::retry::{RetryPolicy, RetryingClient};
use hpcfail_serve::server::{spawn_with_registry, ServerConfig};
use hpcfail_serve::slo::SloPolicy;
use hpcfail_serve::{promtext, top};
use hpcfail_store::ingest::{load_trace_snapshot_first, load_trace_with, IngestPolicy};
use hpcfail_store::snapshot::read_snapshot;
use hpcfail_synth::FleetSpec;
use std::io::{IsTerminal, Read};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage:
  hpcfail-serve serve [--addr 127.0.0.1:7070] [--workers 4] [--cache 1024]
                      [--scale 0.1] [--seed 42] [--scenario NAME|PATH]
                      [--trace DIR [--policy strict|lenient|best-effort]]
                      [--snapshot PATH] [--empty] [--name NAME]
                      [--max-resident-bytes N]
                      [--manifest PATH] [--access-log PATH]
                      [--slo-latency-ms N] [--slo-error-rate F] [--slo-window-ms N]
                      [--max-inflight N] [--max-queued N] [--shed-policy reject|brownout]
                      [--read-timeout-ms N] [--chaos PATH]
                      [--inject-panic KIND] [--quiet]
  hpcfail-serve query --addr HOST:PORT [--trace-name NAME] [--deadline-ms N]
                      [--batch] [--trace]
                      [--retries N] [--retry-base-ms N] [--retry-seed N] JSON|-
  hpcfail-serve upload --addr HOST:PORT --name NAME (--csv PATH | --snapshot PATH)
                       [--policy strict|lenient|best-effort]
  hpcfail-serve traces --addr HOST:PORT
  hpcfail-serve evict --addr HOST:PORT --name NAME
  hpcfail-serve top --addr HOST:PORT [--interval-ms 1000] [--frames N]
  hpcfail-serve check-metrics (--addr HOST:PORT | --file PATH) [--require SERIES]...
  hpcfail-serve requests";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("upload") => cmd_upload(&args[1..]),
        Some("traces") => cmd_traces(&args[1..]),
        Some("evict") => cmd_evict(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("check-metrics") => cmd_check_metrics(&args[1..]),
        Some("requests") => {
            for kind in REQUEST_KINDS {
                println!("{kind}");
            }
            ExitCode::SUCCESS
        }
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand {other:?}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

struct ServeArgs {
    addr: String,
    workers: usize,
    cache: usize,
    scale: Option<f64>,
    seed: Option<u64>,
    scenario: Option<String>,
    trace_dir: Option<String>,
    snapshot: Option<String>,
    empty: bool,
    name: String,
    max_resident_bytes: u64,
    policy: IngestPolicy,
    manifest: Option<String>,
    access_log: Option<String>,
    slo_latency_ms: Option<u64>,
    slo_error_rate: Option<f64>,
    slo_window_ms: Option<u64>,
    max_inflight: Option<usize>,
    max_queued: Option<usize>,
    shed_policy: Option<ShedPolicy>,
    read_timeout_ms: Option<u64>,
    chaos: Option<String>,
    inject_panic: Option<String>,
    quiet: bool,
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("{message}\n{USAGE}");
    ExitCode::from(2)
}

/// Parses `--flag value` pairs; returns the value or an error message.
fn take_value<'a>(flag: &str, iter: &mut std::slice::Iter<'a, String>) -> Result<&'a str, String> {
    iter.next()
        .map(String::as_str)
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let mut parsed = ServeArgs {
        addr: "127.0.0.1:7070".to_owned(),
        workers: 4,
        cache: 1024,
        scale: None,
        seed: None,
        scenario: None,
        trace_dir: None,
        snapshot: None,
        empty: false,
        name: DEFAULT_TRACE.to_owned(),
        max_resident_bytes: 0,
        policy: IngestPolicy::Strict,
        manifest: None,
        access_log: None,
        slo_latency_ms: None,
        slo_error_rate: None,
        slo_window_ms: None,
        max_inflight: None,
        max_queued: None,
        shed_policy: None,
        read_timeout_ms: None,
        chaos: None,
        inject_panic: None,
        quiet: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let result: Result<(), String> =
            match arg.as_str() {
                "--addr" => take_value("--addr", &mut iter).map(|v| parsed.addr = v.to_owned()),
                "--workers" => take_value("--workers", &mut iter).and_then(|v| {
                    v.parse()
                        .map(|n| parsed.workers = n)
                        .map_err(|_| format!("invalid --workers {v:?}"))
                }),
                "--cache" => take_value("--cache", &mut iter).and_then(|v| {
                    v.parse()
                        .map(|n| parsed.cache = n)
                        .map_err(|_| format!("invalid --cache {v:?}"))
                }),
                "--scale" => take_value("--scale", &mut iter).and_then(|v| {
                    v.parse()
                        .map(|n| parsed.scale = Some(n))
                        .map_err(|_| format!("invalid --scale {v:?}"))
                }),
                "--seed" => take_value("--seed", &mut iter).and_then(|v| {
                    v.parse()
                        .map(|n| parsed.seed = Some(n))
                        .map_err(|_| format!("invalid --seed {v:?}"))
                }),
                "--scenario" => take_value("--scenario", &mut iter)
                    .map(|v| parsed.scenario = Some(v.to_owned())),
                "--trace" => {
                    take_value("--trace", &mut iter).map(|v| parsed.trace_dir = Some(v.to_owned()))
                }
                "--snapshot" => take_value("--snapshot", &mut iter)
                    .map(|v| parsed.snapshot = Some(v.to_owned())),
                "--empty" => {
                    parsed.empty = true;
                    Ok(())
                }
                "--name" => take_value("--name", &mut iter).and_then(|v| {
                    if hpcfail_serve::registry::valid_name(v) {
                        parsed.name = v.to_owned();
                        Ok(())
                    } else {
                        Err(format!("invalid --name {v:?}"))
                    }
                }),
                "--max-resident-bytes" => {
                    take_value("--max-resident-bytes", &mut iter).and_then(|v| {
                        v.parse()
                            .map(|n| parsed.max_resident_bytes = n)
                            .map_err(|_| format!("invalid --max-resident-bytes {v:?}"))
                    })
                }
                "--policy" => take_value("--policy", &mut iter)
                    .and_then(|v| v.parse().map(|p| parsed.policy = p)),
                "--manifest" => take_value("--manifest", &mut iter)
                    .map(|v| parsed.manifest = Some(v.to_owned())),
                "--access-log" => take_value("--access-log", &mut iter)
                    .map(|v| parsed.access_log = Some(v.to_owned())),
                "--slo-latency-ms" => take_value("--slo-latency-ms", &mut iter).and_then(|v| {
                    v.parse()
                        .map(|n| parsed.slo_latency_ms = Some(n))
                        .map_err(|_| format!("invalid --slo-latency-ms {v:?}"))
                }),
                "--slo-error-rate" => take_value("--slo-error-rate", &mut iter).and_then(|v| {
                    v.parse()
                        .map(|n| parsed.slo_error_rate = Some(n))
                        .map_err(|_| format!("invalid --slo-error-rate {v:?}"))
                }),
                "--slo-window-ms" => take_value("--slo-window-ms", &mut iter).and_then(|v| {
                    v.parse()
                        .map(|n: u64| parsed.slo_window_ms = Some(n.max(30)))
                        .map_err(|_| format!("invalid --slo-window-ms {v:?}"))
                }),
                "--max-inflight" => take_value("--max-inflight", &mut iter).and_then(|v| {
                    v.parse()
                        .map(|n| parsed.max_inflight = Some(n))
                        .map_err(|_| format!("invalid --max-inflight {v:?}"))
                }),
                "--max-queued" => take_value("--max-queued", &mut iter).and_then(|v| {
                    v.parse()
                        .map(|n| parsed.max_queued = Some(n))
                        .map_err(|_| format!("invalid --max-queued {v:?}"))
                }),
                "--shed-policy" => take_value("--shed-policy", &mut iter)
                    .and_then(|v| v.parse().map(|p| parsed.shed_policy = Some(p))),
                "--read-timeout-ms" => take_value("--read-timeout-ms", &mut iter).and_then(|v| {
                    v.parse()
                        .map(|n: u64| parsed.read_timeout_ms = Some(n.max(1)))
                        .map_err(|_| format!("invalid --read-timeout-ms {v:?}"))
                }),
                "--chaos" => {
                    take_value("--chaos", &mut iter).map(|v| parsed.chaos = Some(v.to_owned()))
                }
                "--inject-panic" => take_value("--inject-panic", &mut iter)
                    .map(|v| parsed.inject_panic = Some(v.to_owned())),
                "--quiet" => {
                    parsed.quiet = true;
                    Ok(())
                }
                other => Err(format!("unknown flag {other:?}")),
            };
        if let Err(message) = result {
            return usage_error(&message);
        }
    }
    if (parsed.trace_dir.is_some() || parsed.snapshot.is_some())
        && (parsed.scale.is_some() || parsed.seed.is_some())
    {
        return usage_error("--scale/--seed and --trace/--snapshot are mutually exclusive");
    }
    if parsed.scenario.is_some()
        && (parsed.scale.is_some()
            || parsed.seed.is_some()
            || parsed.trace_dir.is_some()
            || parsed.snapshot.is_some())
    {
        return usage_error("--scenario excludes --scale/--seed/--trace/--snapshot");
    }
    if parsed.empty
        && (parsed.scale.is_some()
            || parsed.seed.is_some()
            || parsed.scenario.is_some()
            || parsed.trace_dir.is_some()
            || parsed.snapshot.is_some())
    {
        return usage_error("--empty excludes every trace source (traces arrive by upload)");
    }
    let scale = parsed.scale.unwrap_or(0.1);
    let seed = parsed.seed.unwrap_or(42);
    if scale <= 0.0 {
        return usage_error("--scale must be positive");
    }

    let engine = if parsed.empty {
        None
    } else {
        Some(match (&parsed.snapshot, &parsed.trace_dir) {
            (Some(path), Some(dir)) => {
                // Snapshot-first boot with a CSV safety net: a bad snapshot
                // is an audit line, never a dead server.
                match load_trace_snapshot_first(path, dir, parsed.policy) {
                    Ok((trace, report, fallback)) => {
                        if let Some(fallback) = &fallback {
                            eprintln!("ingest: {fallback}");
                        }
                        if let Some(report) = &report {
                            if !parsed.quiet && !report.quarantined.is_empty() {
                                eprintln!(
                                    "ingest: quarantined {} rows under {} policy",
                                    report.quarantined.len(),
                                    parsed.policy
                                );
                            }
                        }
                        Engine::new(trace)
                    }
                    Err(err) => {
                        eprintln!("failed to load trace from {dir:?}: {err}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            (Some(path), None) => match read_snapshot(path) {
                Ok(trace) => Engine::new(trace),
                Err(err) => {
                    eprintln!("failed to load snapshot {path:?}: {err}");
                    return ExitCode::FAILURE;
                }
            },
            (None, Some(dir)) => match load_trace_with(dir, parsed.policy) {
                Ok((trace, report)) => {
                    if !parsed.quiet && !report.quarantined.is_empty() {
                        eprintln!(
                            "ingest: quarantined {} rows under {} policy",
                            report.quarantined.len(),
                            parsed.policy
                        );
                    }
                    Engine::new(trace)
                }
                Err(err) => {
                    eprintln!("failed to load trace from {dir:?}: {err}");
                    return ExitCode::FAILURE;
                }
            },
            (None, None) => {
                if let Some(name) = &parsed.scenario {
                    // Scenario packs bake in their own seed.
                    match hpcfail_synth::scenario::load(name) {
                        Ok(scenario) => Engine::new(scenario.generate().into_store()),
                        Err(err) => {
                            eprintln!("cannot load scenario {name:?}: {err}");
                            return ExitCode::FAILURE;
                        }
                    }
                } else {
                    let spec = if scale >= 1.0 {
                        FleetSpec::lanl()
                    } else {
                        FleetSpec::lanl_scaled(scale)
                    };
                    Engine::new(spec.generate(seed).into_store())
                }
            }
        })
    };

    let chaos = match &parsed.chaos {
        Some(path) => match ChaosConfig::load(path) {
            Ok(config) => {
                if !parsed.quiet {
                    eprintln!(
                        "chaos: {} rules under seed {} from {path}",
                        config.rules.len(),
                        config.seed
                    );
                }
                Some(config)
            }
            Err(err) => {
                eprintln!("{err}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    let fingerprint = engine.as_ref().map_or_else(
        || "none (empty registry)".to_owned(),
        Engine::fingerprint_hex,
    );
    let default_slo = SloPolicy::default();
    let default_admission = AdmissionConfig::default();
    let default_config = ServerConfig::default();
    let config = ServerConfig {
        addr: parsed.addr.clone(),
        workers: parsed.workers,
        cache_capacity: parsed.cache,
        access_log: parsed.access_log.as_ref().map(Into::into),
        read_timeout: parsed
            .read_timeout_ms
            .map(Duration::from_millis)
            .unwrap_or(default_config.read_timeout),
        slo: SloPolicy {
            latency_budget_ms: parsed
                .slo_latency_ms
                .unwrap_or(default_slo.latency_budget_ms),
            max_error_rate: parsed.slo_error_rate.unwrap_or(default_slo.max_error_rate),
            window_ms: parsed.slo_window_ms.unwrap_or(default_slo.window_ms),
        },
        admission: AdmissionConfig {
            max_inflight: parsed
                .max_inflight
                .unwrap_or(default_admission.max_inflight),
            max_queued: parsed.max_queued.unwrap_or(default_admission.max_queued),
            policy: parsed.shed_policy.unwrap_or(default_admission.policy),
            retry_after_ms: default_admission.retry_after_ms,
        },
        chaos,
        inject_panic_kind: parsed.inject_panic.clone(),
        max_resident_bytes: parsed.max_resident_bytes,
        ..ServerConfig::default()
    };
    let registry = TraceRegistry::new(parsed.max_resident_bytes);
    if let Some(engine) = engine {
        registry.insert_engine(&parsed.name, Arc::new(engine), TraceSource::Boot);
    }
    let handle = match spawn_with_registry(registry, config) {
        Ok(handle) => handle,
        Err(err) => {
            eprintln!("failed to bind {:?}: {err}", parsed.addr);
            return ExitCode::FAILURE;
        }
    };
    if !parsed.quiet {
        eprintln!(
            "hpcfail-serve: listening on {} (trace fingerprint {fingerprint}, {} workers, cache {})",
            handle.addr(),
            parsed.workers,
            parsed.cache
        );
    }
    // Machine-readable line for scripts that need the bound port.
    println!("ADDR {}", handle.addr());

    while !handle.is_shutting_down() {
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.shutdown();

    if let Some(path) = &parsed.manifest {
        let snapshot = hpcfail_obs::snapshot();
        let mut sink = ManifestSink::new(path, seed, scale, git_describe());
        if let Err(err) = sink.export(&snapshot) {
            eprintln!("failed to write manifest {path:?}: {err}");
            return ExitCode::FAILURE;
        }
        if !parsed.quiet {
            eprintln!("wrote manifest to {path}");
        }
    }
    ExitCode::SUCCESS
}

fn cmd_query(args: &[String]) -> ExitCode {
    let mut addr: Option<String> = None;
    let mut trace_name = DEFAULT_TRACE.to_owned();
    let mut deadline_ms: Option<u64> = None;
    let mut batch = false;
    let mut trace = false;
    let mut retries: Option<u32> = None;
    let mut retry_base_ms: Option<u64> = None;
    let mut retry_seed: Option<u64> = None;
    let mut payload: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let result: Result<(), String> = match arg.as_str() {
            "--addr" => take_value("--addr", &mut iter).map(|v| addr = Some(v.to_owned())),
            "--trace-name" => take_value("--trace-name", &mut iter).and_then(|v| {
                if hpcfail_serve::registry::valid_name(v) {
                    trace_name = v.to_owned();
                    Ok(())
                } else {
                    Err(format!("invalid --trace-name {v:?}"))
                }
            }),
            "--deadline-ms" => take_value("--deadline-ms", &mut iter).and_then(|v| {
                v.parse()
                    .map(|n| deadline_ms = Some(n))
                    .map_err(|_| format!("invalid --deadline-ms {v:?}"))
            }),
            "--batch" => {
                batch = true;
                Ok(())
            }
            "--trace" => {
                trace = true;
                Ok(())
            }
            "--retries" => take_value("--retries", &mut iter).and_then(|v| {
                v.parse()
                    .map(|n| retries = Some(n))
                    .map_err(|_| format!("invalid --retries {v:?}"))
            }),
            "--retry-base-ms" => take_value("--retry-base-ms", &mut iter).and_then(|v| {
                v.parse()
                    .map(|n| retry_base_ms = Some(n))
                    .map_err(|_| format!("invalid --retry-base-ms {v:?}"))
            }),
            "--retry-seed" => take_value("--retry-seed", &mut iter).and_then(|v| {
                v.parse()
                    .map(|n| retry_seed = Some(n))
                    .map_err(|_| format!("invalid --retry-seed {v:?}"))
            }),
            other if payload.is_none() && !other.starts_with("--") => {
                payload = Some(other.to_owned());
                Ok(())
            }
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(message) = result {
            return usage_error(&message);
        }
    }
    let Some(addr) = addr else {
        return usage_error("query needs --addr HOST:PORT");
    };
    let Some(payload) = payload else {
        return usage_error("query needs a JSON request (or - for stdin)");
    };
    let body = if payload == "-" {
        let mut text = String::new();
        if let Err(err) = std::io::stdin().read_to_string(&mut text) {
            eprintln!("failed to read stdin: {err}");
            return ExitCode::FAILURE;
        }
        text
    } else {
        payload
    };
    // Validate single queries locally for a friendlier error than a
    // round trip (batches are validated server-side per item).
    if !batch {
        if let Err(err) = AnalysisRequest::parse(&body) {
            eprintln!("{err}");
            return ExitCode::from(2);
        }
    }

    let default_policy = RetryPolicy::default();
    let policy = match retries {
        // Explicit `--retries 0` means one attempt, no retries.
        Some(n) => RetryPolicy {
            max_attempts: n + 1,
            base_delay_ms: retry_base_ms.unwrap_or(default_policy.base_delay_ms),
            seed: retry_seed.unwrap_or(default_policy.seed),
            ..default_policy
        },
        None if retry_base_ms.is_some() || retry_seed.is_some() => RetryPolicy {
            base_delay_ms: retry_base_ms.unwrap_or(default_policy.base_delay_ms),
            seed: retry_seed.unwrap_or(default_policy.seed),
            ..default_policy
        },
        None => RetryPolicy::none(),
    };
    let client = RetryingClient::new(Client::new(addr), policy);
    let mut headers: Vec<(String, String)> = Vec::new();
    if let Some(ms) = deadline_ms {
        headers.push(("x-deadline-ms".to_owned(), ms.to_string()));
    }
    if trace {
        headers.push(("x-trace".to_owned(), "1".to_owned()));
    }
    let header_refs: Vec<(&str, &str)> = headers
        .iter()
        .map(|(n, v)| (n.as_str(), v.as_str()))
        .collect();
    let path = if batch {
        format!("/v1/traces/{trace_name}/batch")
    } else {
        format!("/v1/traces/{trace_name}/query")
    };
    let outcome = client.post_detailed(&path, &body, &header_refs);
    if outcome.attempts > 1 {
        eprintln!(
            "retries: {} ({} shed answers{})",
            outcome.attempts - 1,
            outcome.sheds,
            if outcome.gave_up { ", gave up" } else { "" }
        );
    }
    match outcome.result {
        Ok(response) => {
            if let Some(cache) = response.header("x-cache") {
                eprintln!("x-cache: {cache}");
            }
            if let Some(trace_id) = response.header("x-trace-id") {
                eprintln!("x-trace-id: {trace_id}");
            }
            print!("{}", response.body);
            if response.status < 300 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("request to {path} failed: {err}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_upload(args: &[String]) -> ExitCode {
    let mut addr: Option<String> = None;
    let mut name: Option<String> = None;
    let mut csv: Option<String> = None;
    let mut snapshot: Option<String> = None;
    let mut policy: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let result: Result<(), String> = match arg.as_str() {
            "--addr" => take_value("--addr", &mut iter).map(|v| addr = Some(v.to_owned())),
            "--name" => take_value("--name", &mut iter).map(|v| name = Some(v.to_owned())),
            "--csv" => take_value("--csv", &mut iter).map(|v| csv = Some(v.to_owned())),
            "--snapshot" => {
                take_value("--snapshot", &mut iter).map(|v| snapshot = Some(v.to_owned()))
            }
            "--policy" => take_value("--policy", &mut iter).and_then(|v| {
                // Validate locally for a friendlier error than a round
                // trip; the server re-checks its x-ingest-policy header.
                v.parse::<IngestPolicy>()
                    .map(|_| policy = Some(v.to_owned()))
            }),
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(message) = result {
            return usage_error(&message);
        }
    }
    let Some(addr) = addr else {
        return usage_error("upload needs --addr HOST:PORT");
    };
    let Some(name) = name else {
        return usage_error("upload needs --name NAME");
    };
    if !hpcfail_serve::registry::valid_name(&name) {
        return usage_error(&format!("invalid --name {name:?}"));
    }
    let path = match (&csv, &snapshot) {
        (Some(path), None) | (None, Some(path)) => path.clone(),
        _ => return usage_error("upload needs exactly one of --csv or --snapshot"),
    };
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(err) => {
            eprintln!("failed to read {path:?}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let mut headers: Vec<(&str, &str)> = Vec::new();
    if let Some(policy) = &policy {
        headers.push(("x-ingest-policy", policy));
    }
    let client = Client::new(addr);
    match client.post_bytes(&format!("/v1/traces/{name}"), &bytes, &headers) {
        Ok(response) => {
            print!("{}", response.body);
            if response.status < 300 {
                ExitCode::SUCCESS
            } else {
                eprintln!("upload answered {}", response.status);
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("upload to {name:?} failed: {err}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_traces(args: &[String]) -> ExitCode {
    let mut addr: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let result: Result<(), String> = match arg.as_str() {
            "--addr" => take_value("--addr", &mut iter).map(|v| addr = Some(v.to_owned())),
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(message) = result {
            return usage_error(&message);
        }
    }
    let Some(addr) = addr else {
        return usage_error("traces needs --addr HOST:PORT");
    };
    match Client::new(addr).get("/v1/traces") {
        Ok(response) => {
            print!("{}", response.body);
            if response.status < 300 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("trace listing failed: {err}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_evict(args: &[String]) -> ExitCode {
    let mut addr: Option<String> = None;
    let mut name: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let result: Result<(), String> = match arg.as_str() {
            "--addr" => take_value("--addr", &mut iter).map(|v| addr = Some(v.to_owned())),
            "--name" => take_value("--name", &mut iter).map(|v| name = Some(v.to_owned())),
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(message) = result {
            return usage_error(&message);
        }
    }
    let Some(addr) = addr else {
        return usage_error("evict needs --addr HOST:PORT");
    };
    let Some(name) = name else {
        return usage_error("evict needs --name NAME");
    };
    match Client::new(addr).delete(&format!("/v1/traces/{name}")) {
        Ok(response) => {
            print!("{}", response.body);
            if response.status < 300 {
                ExitCode::SUCCESS
            } else {
                eprintln!("evict answered {}", response.status);
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("evict of {name:?} failed: {err}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_top(args: &[String]) -> ExitCode {
    let mut addr: Option<String> = None;
    let mut interval_ms: u64 = 1000;
    let mut frames: Option<u64> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let result: Result<(), String> = match arg.as_str() {
            "--addr" => take_value("--addr", &mut iter).map(|v| addr = Some(v.to_owned())),
            "--interval-ms" => take_value("--interval-ms", &mut iter).and_then(|v| {
                v.parse()
                    .map(|n: u64| interval_ms = n.max(10))
                    .map_err(|_| format!("invalid --interval-ms {v:?}"))
            }),
            "--frames" => take_value("--frames", &mut iter).and_then(|v| {
                v.parse()
                    .map(|n: u64| frames = Some(n.max(1)))
                    .map_err(|_| format!("invalid --frames {v:?}"))
            }),
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(message) = result {
            return usage_error(&message);
        }
    }
    let Some(addr) = addr else {
        return usage_error("top needs --addr HOST:PORT");
    };
    let mut stdout = std::io::stdout();
    let options = top::TopOptions {
        addr,
        interval: Duration::from_millis(interval_ms),
        frames,
        // Only repaint in place on a real terminal; piped output (CI)
        // gets plain appended frames.
        clear: std::io::stdout().is_terminal() && frames != Some(1),
    };
    match top::run(&options, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("top failed: {err}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_check_metrics(args: &[String]) -> ExitCode {
    let mut addr: Option<String> = None;
    let mut file: Option<String> = None;
    let mut requires: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let result: Result<(), String> = match arg.as_str() {
            "--addr" => take_value("--addr", &mut iter).map(|v| addr = Some(v.to_owned())),
            "--file" => take_value("--file", &mut iter).map(|v| file = Some(v.to_owned())),
            "--require" => take_value("--require", &mut iter).map(|v| requires.push(v.to_owned())),
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(message) = result {
            return usage_error(&message);
        }
    }
    let text = match (&addr, &file) {
        (Some(addr), None) => match Client::new(addr.clone()).get("/metrics") {
            Ok(response) if response.status == 200 => response.body,
            Ok(response) => {
                eprintln!("/metrics answered {}", response.status);
                return ExitCode::FAILURE;
            }
            Err(err) => {
                eprintln!("scrape of {addr} failed: {err}");
                return ExitCode::FAILURE;
            }
        },
        (None, Some(path)) => match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("failed to read {path:?}: {err}");
                return ExitCode::FAILURE;
            }
        },
        _ => return usage_error("check-metrics needs exactly one of --addr or --file"),
    };
    let scrape = match promtext::parse(&text) {
        Ok(scrape) => scrape,
        Err(err) => {
            eprintln!("invalid Prometheus exposition format: {err}");
            return ExitCode::FAILURE;
        }
    };
    let mut missing = 0;
    for spec in &requires {
        if check_require(&scrape, spec) {
            eprintln!("ok: {spec}");
        } else {
            eprintln!("MISSING: {spec}");
            missing += 1;
        }
    }
    println!(
        "valid: {} samples, {} type declarations, {}/{} required series present",
        scrape.samples.len(),
        scrape.types.len(),
        requires.len() - missing,
        requires.len()
    );
    if missing == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// A `--require` spec is `name` or `name{label="value",...}`; the
/// scrape satisfies it when some sample has that name and carries
/// every listed label pair.
fn check_require(scrape: &promtext::Scrape, spec: &str) -> bool {
    let (name, label_text) = match spec.split_once('{') {
        Some((name, rest)) => (name, rest.trim_end_matches('}')),
        None => (spec, ""),
    };
    let mut want: Vec<(String, String)> = Vec::new();
    for pair in label_text.split(',').filter(|p| !p.trim().is_empty()) {
        let Some((label, value)) = pair.split_once('=') else {
            return false;
        };
        want.push((
            label.trim().to_owned(),
            value.trim().trim_matches('"').to_owned(),
        ));
    }
    scrape.series(name).any(|s| s.matches(&want))
}
