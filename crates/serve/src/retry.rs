//! A retrying wrapper around [`Client`]: seeded jittered exponential
//! backoff, a global retry budget, and honor-`Retry-After` semantics.
//!
//! Shed responses (429/503) and transport failures (connection refused,
//! reset, dropped mid-response) are retried; every other status — 2xx,
//! 4xx client mistakes, injected 5xx other than 503 — returns on the
//! first attempt. Before re-sending, the client sleeps for whichever
//! the server hinted: `x-retry-after-ms` (exact milliseconds, set by
//! the admission gate), else `retry-after` (whole seconds, the
//! standard header), else seeded jittered exponential backoff
//! (`base · 2^(attempt-1)` capped at `max_delay_ms`, then jittered to
//! `[½, 1)` of that). The jitter stream is a [`SplitMix64`] over the
//! policy seed, so a retry sequence is reproducible in tests.
//!
//! The *budget* bounds total retries across the client's lifetime (not
//! per request): once spent, failures surface immediately instead of
//! amplifying an outage with retry traffic. [`RetryOutcome`] reports
//! what happened per request; [`RetryStats`] aggregates for
//! `BENCH_serve.json`'s shed/retried/gave-up accounting.

use crate::client::{Client, Response};
use hpcfail_obs::rng::SplitMix64;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// When and how hard to retry.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per request (first try included); at least 1.
    pub max_attempts: u32,
    /// First backoff step, milliseconds.
    pub base_delay_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub max_delay_ms: u64,
    /// Total retries allowed across the client's lifetime.
    pub budget: u64,
    /// Seed for the jitter stream; equal seeds ⇒ equal delays.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 10,
            max_delay_ms: 1_000,
            budget: 1_000,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt).
    #[must_use]
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            budget: 0,
            ..RetryPolicy::default()
        }
    }

    /// `attempts` total attempts, everything else default.
    #[must_use]
    pub fn with_attempts(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: attempts.max(1),
            ..RetryPolicy::default()
        }
    }
}

/// What one request cost through the retrying client.
#[derive(Debug)]
pub struct RetryOutcome {
    /// The final answer (or the final transport error).
    pub result: io::Result<Response>,
    /// Attempts actually sent (1 = no retry).
    pub attempts: u32,
    /// How many attempts came back shed (429/503).
    pub sheds: u64,
    /// `true` when retries were exhausted (or budget spent) while the
    /// last answer was still a shed or transport failure.
    pub gave_up: bool,
}

/// Lifetime totals across every request a [`RetryingClient`] sent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Retries actually performed (re-sends, not first attempts).
    pub retries: u64,
    /// Shed answers observed (429/503), including retried ones.
    pub sheds: u64,
    /// Requests that gave up without a non-shed answer.
    pub gave_up: u64,
}

/// A [`Client`] that retries shed and transport-failed requests.
#[derive(Debug)]
pub struct RetryingClient {
    client: Client,
    policy: RetryPolicy,
    jitter: Mutex<SplitMix64>,
    budget_left: AtomicU64,
    retries: AtomicU64,
    sheds: AtomicU64,
    gave_up: AtomicU64,
}

impl RetryingClient {
    /// Wraps `client` with `policy`.
    pub fn new(client: Client, policy: RetryPolicy) -> RetryingClient {
        RetryingClient {
            client,
            policy,
            jitter: Mutex::new(SplitMix64::new(policy.seed)),
            budget_left: AtomicU64::new(policy.budget),
            retries: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
            gave_up: AtomicU64::new(0),
        }
    }

    /// The policy this client runs.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Lifetime retry/shed/gave-up totals.
    pub fn stats(&self) -> RetryStats {
        RetryStats {
            retries: self.retries.load(Ordering::SeqCst),
            sheds: self.sheds.load(Ordering::SeqCst),
            gave_up: self.gave_up.load(Ordering::SeqCst),
        }
    }

    /// Sends a GET, retrying sheds and transport failures.
    ///
    /// # Errors
    ///
    /// The final transport error once retries are exhausted.
    pub fn get(&self, path: &str) -> io::Result<Response> {
        self.get_detailed(path).result
    }

    /// Sends a POST, retrying sheds and transport failures.
    ///
    /// # Errors
    ///
    /// The final transport error once retries are exhausted.
    pub fn post(&self, path: &str, body: &str, headers: &[(&str, &str)]) -> io::Result<Response> {
        self.post_detailed(path, body, headers).result
    }

    /// Like [`RetryingClient::get`], reporting the full
    /// [`RetryOutcome`].
    pub fn get_detailed(&self, path: &str) -> RetryOutcome {
        self.run(|| self.client.get(path))
    }

    /// Like [`RetryingClient::post`], reporting the full
    /// [`RetryOutcome`].
    pub fn post_detailed(&self, path: &str, body: &str, headers: &[(&str, &str)]) -> RetryOutcome {
        self.run(|| self.client.post(path, body, headers))
    }

    fn run(&self, send: impl Fn() -> io::Result<Response>) -> RetryOutcome {
        let mut attempts = 0u32;
        let mut sheds = 0u64;
        loop {
            attempts += 1;
            let result = send();
            let retryable = match &result {
                Ok(response) if is_shed(response.status) => {
                    sheds += 1;
                    self.sheds.fetch_add(1, Ordering::SeqCst);
                    true
                }
                Ok(_) => false,
                Err(_) => true,
            };
            if !retryable {
                return RetryOutcome {
                    result,
                    attempts,
                    sheds,
                    gave_up: false,
                };
            }
            if attempts >= self.policy.max_attempts || !self.take_budget() {
                self.gave_up.fetch_add(1, Ordering::SeqCst);
                return RetryOutcome {
                    result,
                    attempts,
                    sheds,
                    gave_up: true,
                };
            }
            let delay = self.delay_before(attempts, result.as_ref().ok());
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            self.retries.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Claims one unit of retry budget; `false` once it is spent.
    fn take_budget(&self) -> bool {
        self.budget_left
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |left| {
                left.checked_sub(1)
            })
            .is_ok()
    }

    /// The sleep before re-sending attempt `attempts + 1`: the
    /// server's hint when one came back, else seeded jittered
    /// exponential backoff.
    fn delay_before(&self, attempts: u32, response: Option<&Response>) -> Duration {
        if let Some(response) = response {
            if let Some(ms) = response
                .header("x-retry-after-ms")
                .and_then(|v| v.parse::<u64>().ok())
            {
                return Duration::from_millis(ms.min(self.policy.max_delay_ms));
            }
            if let Some(secs) = response
                .header("retry-after")
                .and_then(|v| v.parse::<u64>().ok())
            {
                return Duration::from_millis((secs * 1_000).min(self.policy.max_delay_ms));
            }
        }
        let exp = self
            .policy
            .base_delay_ms
            .saturating_mul(1u64 << (attempts - 1).min(20))
            .min(self.policy.max_delay_ms);
        let fraction = self
            .jitter
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .next_f64();
        Duration::from_millis(exp / 2 + (fraction * (exp as f64) / 2.0) as u64)
    }
}

/// `true` for the statuses the admission gate sheds with.
fn is_shed(status: u16) -> bool {
    status == 429 || status == 503
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client(policy: RetryPolicy) -> RetryingClient {
        // Points at a dead address; only used for delay/stat logic.
        RetryingClient::new(Client::new("127.0.0.1:1"), policy)
    }

    fn shed_response(headers: &[(&str, &str)]) -> Response {
        Response {
            status: 429,
            headers: headers
                .iter()
                .map(|(n, v)| ((*n).to_owned(), (*v).to_owned()))
                .collect(),
            body: String::new(),
        }
    }

    #[test]
    fn exact_hint_beats_seconds_hint_beats_backoff() {
        let policy = RetryPolicy {
            base_delay_ms: 100,
            max_delay_ms: 10_000,
            ..RetryPolicy::default()
        };
        let c = client(policy);
        let both = shed_response(&[("x-retry-after-ms", "7"), ("retry-after", "2")]);
        assert_eq!(c.delay_before(1, Some(&both)), Duration::from_millis(7));
        let secs = shed_response(&[("retry-after", "2")]);
        assert_eq!(c.delay_before(1, Some(&secs)), Duration::from_millis(2_000));
        let bare = shed_response(&[]);
        let backoff = c.delay_before(3, Some(&bare));
        // Attempt 3 ⇒ exp = 400 ms, jittered into [200, 400).
        assert!(
            (Duration::from_millis(200)..Duration::from_millis(400)).contains(&backoff),
            "{backoff:?}"
        );
    }

    #[test]
    fn hints_are_capped_at_max_delay() {
        let policy = RetryPolicy {
            max_delay_ms: 50,
            ..RetryPolicy::default()
        };
        let c = client(policy);
        let huge = shed_response(&[("retry-after", "3600")]);
        assert_eq!(c.delay_before(1, Some(&huge)), Duration::from_millis(50));
    }

    #[test]
    fn jitter_stream_is_seeded_and_reproducible() {
        let policy = RetryPolicy {
            base_delay_ms: 64,
            seed: 99,
            ..RetryPolicy::default()
        };
        let bare = shed_response(&[]);
        let delays = |policy| {
            let c = client(policy);
            (1..6)
                .map(|attempt| c.delay_before(attempt, Some(&bare)))
                .collect::<Vec<_>>()
        };
        assert_eq!(delays(policy), delays(policy));
        let reseeded = RetryPolicy {
            seed: 100,
            ..policy
        };
        assert_ne!(delays(policy), delays(reseeded));
    }

    #[test]
    fn transport_failures_retry_then_give_up() {
        // 127.0.0.1:1 refuses connections, so every attempt fails fast.
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 1,
            max_delay_ms: 2,
            ..RetryPolicy::default()
        };
        let c = client(policy);
        let outcome = c.get_detailed("/healthz");
        assert!(outcome.result.is_err());
        assert_eq!(outcome.attempts, 3);
        assert!(outcome.gave_up);
        assert_eq!(c.stats().retries, 2);
        assert_eq!(c.stats().gave_up, 1);
        assert_eq!(c.stats().sheds, 0);
    }

    #[test]
    fn spent_budget_stops_retrying() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay_ms: 1,
            max_delay_ms: 1,
            budget: 3,
            ..RetryPolicy::default()
        };
        let c = client(policy);
        let first = c.get_detailed("/healthz");
        assert_eq!(first.attempts, 4, "3 budgeted retries then give up");
        let second = c.get_detailed("/healthz");
        assert_eq!(second.attempts, 1, "budget spent: no retries left");
        assert!(second.gave_up);
        assert_eq!(c.stats().retries, 3);
    }

    #[test]
    fn none_policy_sends_exactly_once() {
        let c = client(RetryPolicy::none());
        let outcome = c.get_detailed("/healthz");
        assert_eq!(outcome.attempts, 1);
        assert!(outcome.gave_up);
        assert_eq!(c.stats().retries, 0);
    }
}
