//! A minimal, hardened HTTP/1.1 reader and writer.
//!
//! Only what the query service needs: request-line + headers + sized
//! body parsing with strict limits, and plain sized responses. Every
//! malformed input maps to a typed [`HttpError`] carrying the 4xx
//! status to answer with — parsing never panics, whatever the bytes.

use std::io::{self, BufRead, Write};

/// Longest accepted request line or header line, bytes.
pub const MAX_LINE: usize = 8 * 1024;
/// Most accepted headers per request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body on analysis/control endpoints, bytes.
pub const MAX_BODY: usize = 1024 * 1024;
/// Largest accepted request body on trace-upload endpoints, bytes.
/// The server's per-request limit callback returns this for
/// `POST /v1/traces/{name}` and [`MAX_BODY`] everywhere else, so an
/// oversized declaration still gets its typed 413 before any body
/// byte is read.
pub const MAX_UPLOAD_BODY: usize = 64 * 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method, e.g. `GET`.
    pub method: String,
    /// The path, query string included, e.g. `/query`.
    pub path: String,
    /// Header pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (empty without a `content-length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of the (lower-cased) header `name`.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// `true` if the client asked to close the connection.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically invalid request; answer 400.
    Malformed(String),
    /// A line, header count or body over the limits; answer 413.
    TooLarge(String),
    /// The client started a request but stalled past the read
    /// timeout (slow-loris); answer 408.
    Timeout(String),
    /// The underlying socket failed; drop the connection.
    Io(io::Error),
}

impl HttpError {
    /// The status code this error maps to (I/O has none).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::Malformed(_) => Some((400, "Bad Request")),
            HttpError::TooLarge(_) => Some((413, "Content Too Large")),
            HttpError::Timeout(_) => Some((408, "Request Timeout")),
            HttpError::Io(_) => None,
        }
    }

    /// Human-readable detail, safe to return to the client.
    pub fn message(&self) -> String {
        match self {
            HttpError::Malformed(m) | HttpError::TooLarge(m) | HttpError::Timeout(m) => m.clone(),
            HttpError::Io(e) => e.to_string(),
        }
    }
}

/// `true` for the error kinds a socket read timeout surfaces as.
fn is_timeout(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one line up to CRLF (or bare LF), enforcing [`MAX_LINE`].
/// `Ok(None)` means the peer closed before sending anything.
///
/// A read timeout with zero bytes buffered is only benign on the
/// *first* line of a request (`allow_idle`: an idle keep-alive
/// connection going quiet); once any byte of a request has arrived, a
/// stall is a slow client and maps to [`HttpError::Timeout`] so the
/// server can answer with a typed 408 instead of silently dropping.
fn read_line(stream: &mut impl BufRead, allow_idle: bool) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        let n = match stream.read(&mut byte) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(e.kind()) => {
                if line.is_empty() && allow_idle {
                    return Ok(None);
                }
                return Err(HttpError::Timeout(
                    "read timeout mid-request (slow client)".to_owned(),
                ));
            }
            Err(e) => return Err(HttpError::Io(e)),
        };
        if n == 0 {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::Malformed("truncated line".to_owned()));
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            let text = String::from_utf8(line)
                .map_err(|_| HttpError::Malformed("non-UTF-8 header bytes".to_owned()))?;
            return Ok(Some(text));
        }
        line.push(byte[0]);
        if line.len() > MAX_LINE {
            return Err(HttpError::TooLarge(format!(
                "line exceeds {MAX_LINE} bytes"
            )));
        }
    }
}

/// Reads one request under the default [`MAX_BODY`] limit. `Ok(None)`
/// means the connection closed cleanly between requests (normal
/// keep-alive end).
pub fn read_request(stream: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    read_request_with_limit(stream, |_, _| MAX_BODY)
}

/// Reads one request, asking `max_body(method, path)` — called once
/// the request line is parsed, before any body byte is read — how
/// large a body this endpoint accepts. The server grants
/// [`MAX_UPLOAD_BODY`] to trace uploads and [`MAX_BODY`] to everything
/// else; over-limit declarations answer a typed 413 immediately.
pub fn read_request_with_limit(
    stream: &mut impl BufRead,
    max_body: impl FnOnce(&str, &str) -> usize,
) -> Result<Option<Request>, HttpError> {
    let Some(request_line) = read_line(stream, true)? else {
        return Ok(None);
    };
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!(
            "unsupported protocol version {version:?}"
        )));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(stream, false)?
            .ok_or_else(|| HttpError::Malformed("connection closed mid-headers".to_owned()))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("malformed header {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("invalid content-length {v:?}")))?,
        None => 0,
    };
    let max_body = max_body(&method.to_ascii_uppercase(), path);
    if content_length > max_body {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds {max_body}"
        )));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        stream.read_exact(&mut body).map_err(|e| match e.kind() {
            io::ErrorKind::UnexpectedEof => HttpError::Malformed("truncated body".to_owned()),
            kind if is_timeout(kind) => {
                HttpError::Timeout("read timeout mid-body (slow client)".to_owned())
            }
            _ => HttpError::Io(e),
        })?;
    }

    Ok(Some(Request {
        method: method.to_ascii_uppercase(),
        path: path.to_owned(),
        headers,
        body,
    }))
}

/// Writes one sized response. `extra_headers` are emitted verbatim
/// after the standard ones; supplying a `content-type` there replaces
/// the default `application/json` (the `/metrics` endpoint answers in
/// Prometheus text format).
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
    close: bool,
) -> io::Result<()> {
    let custom_content_type = extra_headers
        .iter()
        .any(|(n, _)| n.eq_ignore_ascii_case("content-type"));
    let mut head = format!("HTTP/1.1 {status} {reason}\r\n");
    if !custom_content_type {
        head.push_str("content-type: application/json\r\n");
    }
    head.push_str(&format!("content-length: {}\r\n", body.len()));
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    if close {
        head.push_str("connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .expect("parses")
            .expect("present");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
        assert!(!req.wants_close());
    }

    #[test]
    fn empty_stream_is_clean_eof() {
        assert!(parse(b"").expect("clean").is_none());
    }

    #[test]
    fn rejects_malformed_inputs() {
        for bytes in [
            b"garbage\r\n\r\n".as_slice(),
            b"GET HTTP/1.1\r\n\r\n".as_slice(),
            b"GET /x HTTP/9.9\r\n\r\n".as_slice(),
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n".as_slice(),
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n".as_slice(),
            b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort".as_slice(),
            b"GET /x HTTP/1.1\r\ntrunc".as_slice(),
            b"\xff\xfe /x HTTP/1.1\r\n\r\n".as_slice(),
        ] {
            let err = parse(bytes).expect_err("must be rejected");
            assert_eq!(err.status().map(|(s, _)| s), Some(400), "{}", err.message());
        }
    }

    /// Serves `data`, then times out forever — a slow-loris client.
    struct Stalling<'a> {
        data: &'a [u8],
        pos: usize,
    }

    impl std::io::Read for Stalling<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos < self.data.len() {
                let n = buf.len().min(self.data.len() - self.pos);
                buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            } else {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "stalled"))
            }
        }
    }

    fn parse_stalling(data: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(Stalling { data, pos: 0 }))
    }

    #[test]
    fn idle_timeout_before_any_byte_is_a_silent_close() {
        assert!(parse_stalling(b"").expect("benign idle").is_none());
    }

    #[test]
    fn stalls_mid_request_map_to_typed_408() {
        for data in [
            b"GET /que".as_slice(),
            b"GET /x HTTP/1.1\r\nhost: x\r\n".as_slice(),
            b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort".as_slice(),
        ] {
            let err = parse_stalling(data).expect_err("stalled request");
            assert_eq!(
                err.status().map(|(s, _)| s),
                Some(408),
                "{:?}: {}",
                data,
                err.message()
            );
        }
    }

    #[test]
    fn rejects_oversized_inputs() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE + 1));
        let err = parse(long_line.as_bytes()).expect_err("too long");
        assert_eq!(err.status().map(|(s, _)| s), Some(413));

        let huge_body = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let err = parse(huge_body.as_bytes()).expect_err("too big");
        assert_eq!(err.status().map(|(s, _)| s), Some(413));

        let mut many_headers = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            many_headers.push_str(&format!("h{i}: v\r\n"));
        }
        many_headers.push_str("\r\n");
        let err = parse(many_headers.as_bytes()).expect_err("too many");
        assert_eq!(err.status().map(|(s, _)| s), Some(413));
    }

    #[test]
    fn extra_content_type_replaces_the_default() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            200,
            "OK",
            &[("content-type", "text/plain; version=0.0.4")],
            "x 1\n",
            false,
        )
        .expect("writes");
        let text = String::from_utf8(out).expect("utf-8");
        assert!(text.contains("content-type: text/plain; version=0.0.4\r\n"));
        assert!(
            !text.contains("application/json"),
            "default content type suppressed: {text}"
        );
    }

    #[test]
    fn writes_a_sized_response() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", &[("x-cache", "hit")], "{}\n", false).expect("writes");
        let text = String::from_utf8(out).expect("utf-8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 3\r\n"));
        assert!(text.contains("x-cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{}\n"));
    }
}
