//! Per-kind SLO tracking over a sliding window.
//!
//! Every served request lands here with its kind label, latency and
//! error flag. The tracker keeps, per kind, a sliding-window latency
//! histogram and windowed request/error counters (the window machinery
//! comes from `hpcfail_obs::window`, which is always compiled — SLO
//! evaluation works even under `no-obs`). Evaluating the tracker
//! against an [`SloPolicy`] yields an [`SloReport`]: per-kind p99
//! versus the latency budget (the *burn* ratio) and windowed error
//! rate versus the error budget. The report feeds the enriched
//! `/healthz` body, the `serve_slo_*` series on `/metrics`, and the
//! `top` dashboard.

use hpcfail_obs::json::Json;
use hpcfail_obs::window::{WindowCounter, WindowHistogram};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// The serving objectives a deployment promises.
#[derive(Debug, Clone, Copy)]
pub struct SloPolicy {
    /// Per-kind p99 latency budget over the window, milliseconds.
    pub latency_budget_ms: u64,
    /// Highest acceptable windowed error rate (5xx / requests).
    pub max_error_rate: f64,
    /// Evaluation window length, milliseconds. A shorter window lets
    /// `/healthz` recover faster after a storm (the chaos suite uses
    /// this); 30 s is the production default.
    pub window_ms: u64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            latency_budget_ms: 500,
            max_error_rate: 0.05,
            window_ms: 30_000,
        }
    }
}

struct KindTrack {
    latency: WindowHistogram,
    requests: WindowCounter,
    errors: WindowCounter,
}

/// Exponential nanosecond bounds (1 µs to ~64 s), matching
/// `WindowHistogram::exponential_ns`.
fn latency_bounds() -> Vec<u64> {
    (10..37).map(|p| 1u64 << p).collect()
}

impl KindTrack {
    fn new(window_ms: u64) -> KindTrack {
        // 30 slots over the window, whatever its length.
        let slot_ms = (window_ms / 30).max(1);
        KindTrack {
            latency: WindowHistogram::with_bounds(&latency_bounds(), slot_ms, 30),
            requests: WindowCounter::new(slot_ms, 30),
            errors: WindowCounter::new(slot_ms, 30),
        }
    }
}

/// The live tracker: one window set per request kind.
pub struct SloTracker {
    policy: SloPolicy,
    kinds: Mutex<BTreeMap<String, KindTrack>>,
}

impl SloTracker {
    /// An empty tracker evaluating against `policy`.
    pub fn new(policy: SloPolicy) -> SloTracker {
        SloTracker {
            policy,
            kinds: Mutex::new(BTreeMap::new()),
        }
    }

    /// The policy being evaluated.
    pub fn policy(&self) -> SloPolicy {
        self.policy
    }

    /// Records one served request.
    pub fn record(&self, kind: &str, latency_ns: u64, error: bool) {
        let mut kinds = match self.kinds.lock() {
            Ok(kinds) => kinds,
            Err(poisoned) => poisoned.into_inner(),
        };
        let track = kinds
            .entry(kind.to_owned())
            .or_insert_with(|| KindTrack::new(self.policy.window_ms));
        track.latency.record(latency_ns);
        track.requests.add(1);
        if error {
            track.errors.add(1);
        }
    }

    /// Evaluates every kind against the policy, right now.
    pub fn report(&self) -> SloReport {
        let kinds = match self.kinds.lock() {
            Ok(kinds) => kinds,
            Err(poisoned) => poisoned.into_inner(),
        };
        let budget_ns = self.policy.latency_budget_ms as f64 * 1e6;
        let mut out = BTreeMap::new();
        for (kind, track) in kinds.iter() {
            let latency = track.latency.snapshot();
            let requests = track.requests.total();
            let errors = track.errors.total();
            if requests == 0 && latency.count == 0 {
                continue; // nothing in the window any more
            }
            let error_rate = if requests == 0 {
                0.0
            } else {
                errors as f64 / requests as f64
            };
            let burn = if budget_ns > 0.0 {
                latency.p99 / budget_ns
            } else {
                0.0
            };
            out.insert(
                kind.clone(),
                KindSlo {
                    requests,
                    errors,
                    error_rate,
                    p99_ms: latency.p99 / 1e6,
                    budget_ms: self.policy.latency_budget_ms,
                    burn,
                    latency_ok: burn <= 1.0,
                    errors_ok: error_rate <= self.policy.max_error_rate,
                },
            );
        }
        SloReport {
            healthy: out.values().all(|k| k.latency_ok && k.errors_ok),
            max_error_rate: self.policy.max_error_rate,
            kinds: out,
        }
    }
}

/// One kind's standing against the policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KindSlo {
    /// Requests in the window.
    pub requests: u64,
    /// 5xx responses in the window.
    pub errors: u64,
    /// `errors / requests` over the window.
    pub error_rate: f64,
    /// Windowed p99 latency, milliseconds.
    pub p99_ms: f64,
    /// The latency budget, milliseconds.
    pub budget_ms: u64,
    /// `p99 / budget`: under 1.0 the budget holds.
    pub burn: f64,
    /// `true` while p99 stays within the budget.
    pub latency_ok: bool,
    /// `true` while the error rate stays within the budget.
    pub errors_ok: bool,
}

impl KindSlo {
    /// Serializes this kind's standing.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("requests", Json::Num(self.requests as f64)),
            ("errors", Json::Num(self.errors as f64)),
            ("error_rate", Json::Num(self.error_rate)),
            ("p99_ms", Json::Num(self.p99_ms)),
            ("budget_ms", Json::Num(self.budget_ms as f64)),
            ("burn", Json::Num(self.burn)),
            ("latency_ok", Json::Bool(self.latency_ok)),
            ("errors_ok", Json::Bool(self.errors_ok)),
        ])
    }
}

/// A point-in-time evaluation of every kind.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// `true` when every kind meets both budgets (vacuously true with
    /// no traffic in the window).
    pub healthy: bool,
    /// The error-rate budget the kinds were held to.
    pub max_error_rate: f64,
    /// Per-kind standings, keyed by kind label.
    pub kinds: BTreeMap<String, KindSlo>,
}

impl SloReport {
    /// Serializes the report as the `/healthz` `slo` object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "status",
                Json::Str(if self.healthy { "ok" } else { "degraded" }.to_owned()),
            ),
            ("max_error_rate", Json::Num(self.max_error_rate)),
            (
                "kinds",
                Json::Obj(
                    self.kinds
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker_is_healthy() {
        let tracker = SloTracker::new(SloPolicy::default());
        let report = tracker.report();
        assert!(report.healthy);
        assert!(report.kinds.is_empty());
    }

    #[test]
    fn fast_clean_traffic_meets_both_budgets() {
        let tracker = SloTracker::new(SloPolicy {
            latency_budget_ms: 100,
            max_error_rate: 0.05,
            ..SloPolicy::default()
        });
        for _ in 0..100 {
            tracker.record("trace-summary", 2_000_000, false); // 2 ms
        }
        let report = tracker.report();
        assert!(report.healthy);
        let kind = &report.kinds["trace-summary"];
        assert_eq!(kind.requests, 100);
        assert_eq!(kind.errors, 0);
        assert!(kind.latency_ok && kind.errors_ok);
        assert!(kind.burn < 1.0, "burn {}", kind.burn);
    }

    #[test]
    fn slow_or_failing_traffic_degrades() {
        let tracker = SloTracker::new(SloPolicy {
            latency_budget_ms: 1,
            max_error_rate: 0.01,
            ..SloPolicy::default()
        });
        for i in 0..50 {
            // 10 ms latency blows the 1 ms budget; every 5th is a 5xx.
            tracker.record("batch", 10_000_000, i % 5 == 0);
        }
        let report = tracker.report();
        assert!(!report.healthy);
        let kind = &report.kinds["batch"];
        assert!(!kind.latency_ok, "p99 {} ms over 1 ms", kind.p99_ms);
        assert!(kind.burn > 1.0);
        assert!(!kind.errors_ok, "error rate {}", kind.error_rate);
    }

    #[test]
    fn report_serializes_with_status() {
        let tracker = SloTracker::new(SloPolicy::default());
        tracker.record("healthz", 1_000, false);
        let json = tracker.report().to_json();
        assert_eq!(
            json.get("status").and_then(Json::as_str),
            Some("ok"),
            "{}",
            json.pretty()
        );
        assert!(json.get("kinds").and_then(|k| k.get("healthz")).is_some());
    }
}
