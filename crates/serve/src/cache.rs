//! The LRU result cache.
//!
//! Keys are `(trace name, epoch fingerprint, canonical request JSON)`;
//! values are shared serialized response bodies. The name scopes
//! entries to one registry slot and the fingerprint to one epoch's
//! data, so re-uploading different data under the same name can never
//! serve a stale hit — while re-uploading byte-identical data keeps
//! its warm entries (same fingerprint, same key).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::sync::Mutex;

/// Cache key: `(trace name, epoch fingerprint, canonical request)`.
pub type CacheKey = (String, u64, String);

struct CacheInner {
    /// key → (body, recency stamp)
    map: HashMap<CacheKey, (Arc<String>, u64)>,
    /// recency stamp → key, oldest first.
    order: BTreeMap<u64, CacheKey>,
    next_stamp: u64,
}

/// A thread-safe LRU cache of serialized query results.
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl ResultCache {
    /// A cache holding at most `capacity` results; 0 disables caching.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: BTreeMap::new(),
                next_stamp: 0,
            }),
            capacity,
        }
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<String>> {
        let mut inner = self.inner.lock().expect("cache lock");
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        let (body, old_stamp) = match inner.map.get_mut(key) {
            Some((body, old)) => {
                let prev = *old;
                *old = stamp;
                (Arc::clone(body), prev)
            }
            None => return None,
        };
        inner.order.remove(&old_stamp);
        inner.order.insert(stamp, key.clone());
        Some(body)
    }

    /// Inserts `body` under `key`, evicting the least recently used
    /// entry when full.
    pub fn put(&self, key: CacheKey, body: Arc<String>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        if let Some((_, old_stamp)) = inner.map.insert(key.clone(), (body, stamp)) {
            inner.order.remove(&old_stamp);
        }
        inner.order.insert(stamp, key);
        while inner.map.len() > self.capacity {
            let Some((&oldest, _)) = inner.order.iter().next() else {
                break;
            };
            let evicted = inner.order.remove(&oldest).expect("present");
            inner.map.remove(&evicted);
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> CacheKey {
        ("default".to_owned(), 7, s.to_owned())
    }

    fn body(s: &str) -> Arc<String> {
        Arc::new(s.to_owned())
    }

    #[test]
    fn hits_after_put_and_misses_before() {
        let cache = ResultCache::new(4);
        assert!(cache.get(&key("a")).is_none());
        cache.put(key("a"), body("1"));
        assert_eq!(
            cache.get(&key("a")).as_deref().map(String::as_str),
            Some("1")
        );
        // A different fingerprint is a different key, and so is a
        // different trace name.
        assert!(cache
            .get(&("default".to_owned(), 8, "a".to_owned()))
            .is_none());
        assert!(cache
            .get(&("other".to_owned(), 7, "a".to_owned()))
            .is_none());
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = ResultCache::new(2);
        cache.put(key("a"), body("1"));
        cache.put(key("b"), body("2"));
        // Touch "a" so "b" is the LRU victim.
        assert!(cache.get(&key("a")).is_some());
        cache.put(key("c"), body("3"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key("a")).is_some());
        assert!(cache.get(&key("b")).is_none());
        assert!(cache.get(&key("c")).is_some());
    }

    #[test]
    fn reinserting_updates_value_without_growth() {
        let cache = ResultCache::new(2);
        cache.put(key("a"), body("1"));
        cache.put(key("a"), body("2"));
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.get(&key("a")).as_deref().map(String::as_str),
            Some("2")
        );
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::new(0);
        cache.put(key("a"), body("1"));
        assert!(cache.is_empty());
        assert!(cache.get(&key("a")).is_none());
    }
}
