//! `hpcfail-serve`: a concurrent query service over the unified
//! [`hpcfail_core::engine::Engine`] API.
//!
//! The crate turns the analysis toolkit into a long-running server: a
//! trace is loaded **once** (synthetic or CSV, any ingest policy), one
//! [`Engine`](hpcfail_core::engine::Engine) fingerprints and shares it
//! across a fixed pool of worker threads, and typed
//! [`AnalysisRequest`](hpcfail_core::engine::AnalysisRequest)s arrive
//! as JSON over plain HTTP/1.1 — std only, no frameworks.
//!
//! Serving adds three behaviors on top of the engine, none of which
//! can change an answer's bytes:
//!
//! * **Result cache** ([`cache`]): an LRU keyed on
//!   `(trace fingerprint, canonical request JSON)`. Warm queries skip
//!   the analysis entirely.
//! * **Coalescing** ([`coalesce`]): identical in-flight queries elect
//!   one leader; followers share its serialized result.
//! * **Deadlines** ([`server`]): a follower whose `x-deadline-ms`
//!   passes before the leader finishes degrades gracefully to a typed
//!   `504` instead of blocking a worker.
//!
//! Observability: `serve.requests`, `serve.cache.hit`,
//! `serve.cache.miss`, `serve.coalesced`, `serve.degraded` counters,
//! the `serve.inflight` gauge and per-kind `serve.query.<kind>` spans
//! all land in the standard `hpcfail-obs` registry, so a server run
//! exports the same manifest format as a `repro` run.
//!
//! ```no_run
//! use hpcfail_core::engine::Engine;
//! use hpcfail_serve::server::{spawn, ServerConfig};
//! use hpcfail_store::trace::Trace;
//!
//! let engine = Engine::new(Trace::new());
//! let handle = spawn(engine, ServerConfig::default()).expect("bind");
//! println!("serving on {}", handle.addr());
//! handle.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod coalesce;
pub mod http;
pub mod server;

pub use client::{Client, Response};
pub use server::{spawn, ServerConfig, ServerHandle};
