//! `hpcfail-serve`: a concurrent, multi-tenant query service over the
//! unified [`hpcfail_core::engine::Engine`] API.
//!
//! The crate turns the analysis toolkit into a long-running server: a
//! **trace registry** ([`registry`]) maps names to engines — traces
//! load at boot or arrive as CSV/`.hpcsnap` uploads over HTTP, each
//! with its own fingerprint and epoch — and typed
//! [`AnalysisRequest`](hpcfail_core::engine::AnalysisRequest)s arrive
//! as JSON over plain HTTP/1.1 — std only, no frameworks. The HTTP
//! surface is versioned and trace-scoped (`/v1/traces/{name}/query`,
//! see [`routes`]); the legacy unversioned endpoints keep working
//! against the `default` trace with an `x-api-deprecated` header.
//! Re-uploading a name is an atomic epoch swap: in-flight queries
//! finish against their pinned epoch, and the old epoch's memory is
//! released when its last pin drops. Under `--max-resident-bytes`,
//! least-recently-queried traces demote to snapshot-backed cold state
//! and rehydrate transparently on the next query.
//!
//! Serving adds three behaviors on top of the engine, none of which
//! can change an answer's bytes:
//!
//! * **Result cache** ([`cache`]): an LRU keyed on
//!   `(trace name, epoch fingerprint, canonical request JSON)`. Warm
//!   queries skip the analysis entirely; a name's stale epochs can
//!   never answer.
//! * **Coalescing** ([`coalesce`]): identical in-flight queries elect
//!   one leader; followers share its serialized result.
//! * **Deadlines** ([`server`]): a follower whose `x-deadline-ms`
//!   passes before the leader finishes degrades gracefully to a typed
//!   `504` instead of blocking a worker.
//!
//! Under load the server protects itself instead of falling over:
//!
//! * **Admission control** ([`admission`]): a bounded gate in front of
//!   the worker pool classifies every `/query`/`/batch` by cost
//!   (cached hit / cold scan / batch) and sheds with *typed* `429`/
//!   `503` + `Retry-After` when full — brownout mode sheds expensive
//!   classes first while `/healthz` and `/metrics` stay always-on.
//! * **Retrying client** ([`retry`]): seeded jittered exponential
//!   backoff with a retry budget and honor-`Retry-After` semantics,
//!   used by `hpcfail-serve query` and `hpcfail-load`'s HTTP target.
//! * **Chaos injection** ([`chaos`]): a seeded `--chaos spec.json`
//!   injects latency, stalls, typed errors, drops and forced sheds at
//!   named points, deterministically, so storm recovery is testable.
//!
//! Observability is request-scoped and live:
//!
//! * Every request runs under a trace; the id comes back in the
//!   `x-trace-id` header, and `x-trace: 1` returns the full span tree
//!   inline ([`server`]).
//! * `GET /metrics` exports the registry in Prometheus text format
//!   ([`metrics`]), validated by the in-tree parser ([`promtext`]).
//! * Per-kind sliding-window latency and error budgets feed SLO
//!   standings ([`slo`]) into `/healthz` and `serve_slo_*` series.
//! * An optional size-capped JSONL access log records one line per
//!   request ([`accesslog`]).
//! * `hpcfail-serve top` polls `/metrics` into a live dashboard
//!   ([`top`]).
//!
//! The flat counters (`serve.requests`, `serve.cache.hit`,
//! `serve.cache.miss`, `serve.coalesced`, `serve.degraded`), the
//! `serve.inflight` gauge and per-kind `serve.query.<kind>` spans all
//! land in the standard `hpcfail-obs` registry, so a server run
//! exports the same manifest format as a `repro` run.
//!
//! ```no_run
//! use hpcfail_core::engine::Engine;
//! use hpcfail_serve::server::{spawn, ServerConfig};
//! use hpcfail_store::trace::Trace;
//!
//! let engine = Engine::new(Trace::new());
//! let handle = spawn(engine, ServerConfig::default()).expect("bind");
//! println!("serving on {}", handle.addr());
//! handle.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accesslog;
pub mod admission;
pub mod cache;
pub mod chaos;
pub mod client;
pub mod coalesce;
pub mod http;
pub mod metrics;
pub mod promtext;
pub mod registry;
pub mod retry;
pub mod routes;
pub mod server;
pub mod slo;
pub mod top;

pub use admission::{AdmissionConfig, CostClass, ShedPolicy, ShedReason};
pub use chaos::{ChaosConfig, ChaosError};
pub use client::{Client, Response};
pub use registry::{TraceRegistry, TraceSource, TraceSummary, DEFAULT_TRACE};
pub use retry::{RetryPolicy, RetryingClient};
pub use routes::{Endpoint, RouteMatch, Routed};
pub use server::{spawn, ServerConfig, ServerHandle};
pub use slo::{SloPolicy, SloReport};
