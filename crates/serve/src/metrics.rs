//! Renders the obs registry as Prometheus text exposition format
//! (version 0.0.4) for `GET /metrics`.
//!
//! The serve-side telemetry follows naming conventions that this
//! module maps onto properly *labeled* series:
//!
//! | registry name | exported as |
//! |---|---|
//! | `serve.requests` | `serve_requests_total` |
//! | `serve.cache.hit` / `.miss` / `serve.coalesced` | `serve_cache_requests_total{result=...}` |
//! | `serve.status.<code>` | `serve_responses_total{code="..."}` |
//! | `serve.kind.<kind>.requests` | `serve_requests_by_kind_total{kind="..."}` |
//! | `serve.trace.<name>.requests` | `serve_trace_requests_total{trace="..."}` |
//! | `serve.latency_ns.<kind>` histogram | `serve_request_latency_ns{kind=,quantile=}` summary |
//! | `serve.window.latency_ns.<kind>` window | `serve_window_latency_ns{kind=,quantile=}` summary |
//!
//! plus live SLO gauges (`serve_slo_*`) from the [`crate::slo::SloTracker`]
//! report and the live in-flight gauge. Everything else in the
//! registry — the engine and store instrumentation — is exported
//! generically: dots become underscores, counters get a `_total`
//! suffix, histograms become summaries. Output is deterministic for a
//! given registry state (BTreeMap ordering everywhere).

use crate::slo::SloReport;
use hpcfail_obs::registry::{HistogramSnapshot, Snapshot};
use hpcfail_obs::window::WindowedSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

const CACHE_RESULTS: [(&str, &str); 3] = [
    ("serve.cache.hit", "hit"),
    ("serve.cache.miss", "miss"),
    ("serve.coalesced", "coalesced"),
];

/// Maps a dotted registry name to a valid Prometheus metric name.
pub fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out
        .chars()
        .next()
        .is_none_or(|c| !(c.is_ascii_alphabetic() || c == '_' || c == ':'))
    {
        out.insert(0, '_');
    }
    out
}

/// Escapes a label value per the exposition format.
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Formats a sample value the way Prometheus expects (no exponent
/// surprises for integral values).
fn fmt_value(value: f64) -> String {
    if value == value.trunc() && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

struct Out {
    text: String,
    declared: BTreeMap<String, &'static str>,
}

impl Out {
    fn new() -> Out {
        Out {
            text: String::new(),
            declared: BTreeMap::new(),
        }
    }

    fn family(&mut self, name: &str, kind: &'static str, help: &str) {
        if self.declared.insert(name.to_owned(), kind).is_none() {
            let _ = writeln!(self.text, "# HELP {name} {help}");
            let _ = writeln!(self.text, "# TYPE {name} {kind}");
        }
    }

    fn sample(&mut self, name: &str, labels: &[(&str, String)], value: f64) {
        let _ = write!(self.text, "{name}");
        if !labels.is_empty() {
            let rendered: Vec<String> = labels
                .iter()
                .map(|(n, v)| format!("{n}=\"{}\"", escape_label(v)))
                .collect();
            let _ = write!(self.text, "{{{}}}", rendered.join(","));
        }
        let _ = writeln!(self.text, " {}", fmt_value(value));
    }
}

fn summary_block(out: &mut Out, family: &str, help: &str, entries: &[(String, HistogramSnapshot)]) {
    if entries.is_empty() {
        return;
    }
    out.family(family, "summary", help);
    for (kind, h) in entries {
        for (q, v) in [(0.5, h.p50), (0.9, h.p90), (0.95, h.p95), (0.99, h.p99)] {
            out.sample(
                family,
                &[("kind", kind.clone()), ("quantile", q.to_string())],
                v,
            );
        }
        out.sample(
            &format!("{family}_count"),
            &[("kind", kind.clone())],
            h.count as f64,
        );
        out.sample(
            &format!("{family}_sum"),
            &[("kind", kind.clone())],
            h.sum as f64,
        );
    }
}

fn window_block(out: &mut Out, family: &str, help: &str, entries: &[(String, WindowedSnapshot)]) {
    if entries.is_empty() {
        return;
    }
    out.family(family, "summary", help);
    for (kind, w) in entries {
        for (q, v) in [(0.5, w.p50), (0.9, w.p90), (0.95, w.p95), (0.99, w.p99)] {
            out.sample(
                family,
                &[("kind", kind.clone()), ("quantile", q.to_string())],
                v,
            );
        }
        out.sample(
            &format!("{family}_count"),
            &[("kind", kind.clone())],
            w.count as f64,
        );
        out.sample(
            &format!("{family}_sum"),
            &[("kind", kind.clone())],
            w.sum as f64,
        );
    }
}

/// Renders one scrape. `inflight` is the live in-flight request count
/// (read from the server, not the registry, so it is exact at scrape
/// time).
pub fn render(snapshot: &Snapshot, slo: &SloReport, inflight: u64) -> String {
    let mut out = Out::new();
    let mut consumed: Vec<&str> = vec!["serve.requests"];

    // serve_requests_total
    out.family(
        "serve_requests_total",
        "counter",
        "Requests served, all endpoints.",
    );
    out.sample(
        "serve_requests_total",
        &[],
        snapshot
            .counters
            .get("serve.requests")
            .copied()
            .unwrap_or(0) as f64,
    );

    // serve_cache_requests_total{result=}
    out.family(
        "serve_cache_requests_total",
        "counter",
        "Query answers by cache outcome.",
    );
    for (counter, result) in CACHE_RESULTS {
        consumed.push(counter);
        out.sample(
            "serve_cache_requests_total",
            &[("result", result.to_owned())],
            snapshot.counters.get(counter).copied().unwrap_or(0) as f64,
        );
    }

    // serve_responses_total{code=}
    let codes: Vec<(&String, &u64)> = snapshot
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("serve.status."))
        .collect();
    if !codes.is_empty() {
        out.family(
            "serve_responses_total",
            "counter",
            "Responses by status code.",
        );
        for (name, value) in codes {
            let code = name.trim_start_matches("serve.status.");
            out.sample(
                "serve_responses_total",
                &[("code", code.to_owned())],
                *value as f64,
            );
        }
    }

    // serve_requests_by_kind_total{kind=}
    let kinds: Vec<(String, u64)> = snapshot
        .counters
        .iter()
        .filter_map(|(name, value)| {
            name.strip_prefix("serve.kind.")
                .and_then(|rest| rest.strip_suffix(".requests"))
                .map(|kind| (kind.to_owned(), *value))
        })
        .collect();
    if !kinds.is_empty() {
        out.family(
            "serve_requests_by_kind_total",
            "counter",
            "Requests by kind label.",
        );
        for (kind, value) in &kinds {
            out.sample(
                "serve_requests_by_kind_total",
                &[("kind", kind.clone())],
                *value as f64,
            );
        }
    }

    // serve_trace_requests_total{trace=}
    let traces: Vec<(String, u64)> = snapshot
        .counters
        .iter()
        .filter_map(|(name, value)| {
            name.strip_prefix("serve.trace.")
                .and_then(|rest| rest.strip_suffix(".requests"))
                .map(|trace| (trace.to_owned(), *value))
        })
        .collect();
    if !traces.is_empty() {
        out.family(
            "serve_trace_requests_total",
            "counter",
            "Analysis requests by registry trace name.",
        );
        for (trace, value) in &traces {
            out.sample(
                "serve_trace_requests_total",
                &[("trace", trace.clone())],
                *value as f64,
            );
        }
    }

    // Per-kind latency summaries: lifetime and sliding-window.
    let latency: Vec<(String, HistogramSnapshot)> = snapshot
        .histograms
        .iter()
        .filter_map(|(name, h)| {
            name.strip_prefix("serve.latency_ns.")
                .map(|kind| (kind.to_owned(), *h))
        })
        .collect();
    summary_block(
        &mut out,
        "serve_request_latency_ns",
        "Request latency by kind, nanoseconds, process lifetime.",
        &latency,
    );
    let windows: Vec<(String, WindowedSnapshot)> = snapshot
        .windows
        .iter()
        .filter_map(|(name, w)| {
            name.strip_prefix("serve.window.latency_ns.")
                .map(|kind| (kind.to_owned(), *w))
        })
        .collect();
    window_block(
        &mut out,
        "serve_window_latency_ns",
        "Request latency by kind, nanoseconds, sliding window.",
        &windows,
    );
    if let Some((_, w)) = windows.first() {
        out.family(
            "serve_window_seconds",
            "gauge",
            "Width of the sliding latency window.",
        );
        out.sample("serve_window_seconds", &[], w.window_ms as f64 / 1000.0);
    }

    // Live gauges.
    out.family(
        "serve_inflight",
        "gauge",
        "Requests currently being handled.",
    );
    out.sample("serve_inflight", &[], inflight as f64);

    // SLO standings.
    out.family(
        "serve_slo_healthy",
        "gauge",
        "1 while every kind meets both SLO budgets.",
    );
    out.sample("serve_slo_healthy", &[], f64::from(u8::from(slo.healthy)));
    if !slo.kinds.is_empty() {
        out.family(
            "serve_slo_latency_burn",
            "gauge",
            "Windowed p99 over the latency budget; above 1 the budget is blown.",
        );
        for (kind, k) in &slo.kinds {
            out.sample("serve_slo_latency_burn", &[("kind", kind.clone())], k.burn);
        }
        out.family(
            "serve_slo_error_rate",
            "gauge",
            "Windowed 5xx rate by kind.",
        );
        for (kind, k) in &slo.kinds {
            out.sample(
                "serve_slo_error_rate",
                &[("kind", kind.clone())],
                k.error_rate,
            );
        }
        out.family(
            "serve_slo_ok",
            "gauge",
            "1 while the kind meets both budgets.",
        );
        for (kind, k) in &slo.kinds {
            out.sample(
                "serve_slo_ok",
                &[("kind", kind.clone())],
                f64::from(u8::from(k.latency_ok && k.errors_ok)),
            );
        }
    }

    // Everything else in the registry, exported generically.
    for (name, value) in &snapshot.counters {
        if consumed.contains(&name.as_str())
            || name.starts_with("serve.status.")
            || name.starts_with("serve.kind.")
            || name.starts_with("serve.trace.")
        {
            continue;
        }
        let family = format!("{}_total", sanitize(name));
        out.family(&family, "counter", "Registry counter.");
        out.sample(&family, &[], *value as f64);
    }
    for (name, value) in &snapshot.gauges {
        if name == "serve.inflight" {
            continue; // exported live above
        }
        let family = sanitize(name);
        out.family(&family, "gauge", "Registry gauge.");
        out.sample(&family, &[], *value);
    }
    for (name, h) in &snapshot.histograms {
        if name.starts_with("serve.latency_ns.") {
            continue;
        }
        let family = sanitize(name);
        out.family(&family, "summary", "Registry histogram.");
        for (q, v) in [(0.5, h.p50), (0.9, h.p90), (0.95, h.p95), (0.99, h.p99)] {
            out.sample(&family, &[("quantile", q.to_string())], v);
        }
        out.sample(&format!("{family}_count"), &[], h.count as f64);
        out.sample(&format!("{family}_sum"), &[], h.sum as f64);
    }
    for (name, w) in &snapshot.windows {
        if name.starts_with("serve.window.latency_ns.") {
            continue;
        }
        let family = sanitize(name);
        out.family(&family, "summary", "Registry sliding-window histogram.");
        for (q, v) in [(0.5, w.p50), (0.9, w.p90), (0.95, w.p95), (0.99, w.p99)] {
            out.sample(&family, &[("quantile", q.to_string())], v);
        }
        out.sample(&format!("{family}_count"), &[], w.count as f64);
        out.sample(&format!("{family}_sum"), &[], w.sum as f64);
    }

    out.text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::promtext;
    use crate::slo::{SloPolicy, SloTracker};
    use hpcfail_obs::registry::Registry;

    fn serve_like_registry() -> Registry {
        let registry = Registry::new();
        registry.counter("serve.requests").add(12);
        registry.counter("serve.cache.hit").add(4);
        registry.counter("serve.cache.miss").add(7);
        registry.counter("serve.coalesced").add(1);
        registry.counter("serve.status.200").add(11);
        registry.counter("serve.status.400").add(1);
        registry.counter("serve.kind.trace-summary.requests").add(6);
        registry.counter("serve.trace.lanl-96.requests").add(5);
        registry.counter("engine.requests").add(6);
        registry.gauge("store.filter_hit_rate").set(0.5);
        for v in [1_000, 2_000, 50_000] {
            registry
                .histogram("serve.latency_ns.trace-summary")
                .record(v);
            registry
                .window("serve.window.latency_ns.trace-summary")
                .record_at_ms(0, v);
        }
        registry
    }

    #[test]
    fn render_is_valid_promtext_with_labeled_series() {
        let registry = serve_like_registry();
        let tracker = SloTracker::new(SloPolicy::default());
        tracker.record("trace-summary", 2_000_000, false);
        let text = render(&registry.snapshot(), &tracker.report(), 3);

        let scrape = promtext::parse(&text).expect("render emits valid promtext");
        assert_eq!(scrape.value("serve_requests_total", &[]), Some(12.0));
        assert_eq!(
            scrape.value("serve_cache_requests_total", &[("result", "hit")]),
            Some(4.0)
        );
        assert_eq!(
            scrape.value("serve_responses_total", &[("code", "400")]),
            Some(1.0)
        );
        assert_eq!(
            scrape.value("serve_requests_by_kind_total", &[("kind", "trace-summary")]),
            Some(6.0)
        );
        assert_eq!(
            scrape.value("serve_trace_requests_total", &[("trace", "lanl-96")]),
            Some(5.0)
        );
        assert_eq!(scrape.value("serve_inflight", &[]), Some(3.0));
        assert_eq!(scrape.value("serve_slo_healthy", &[]), Some(1.0));
        assert!(
            scrape
                .value(
                    "serve_request_latency_ns",
                    &[("kind", "trace-summary"), ("quantile", "0.99")]
                )
                .is_some(),
            "lifetime p99 present"
        );
        assert!(
            scrape
                .value(
                    "serve_window_latency_ns",
                    &[("kind", "trace-summary"), ("quantile", "0.99")]
                )
                .is_some(),
            "windowed p99 present"
        );
        // Generic export keeps the rest visible.
        assert_eq!(scrape.value("engine_requests_total", &[]), Some(6.0));
        assert_eq!(scrape.value("store_filter_hit_rate", &[]), Some(0.5));
        assert_eq!(scrape.types["serve_request_latency_ns"], "summary");
    }

    #[test]
    fn render_is_deterministic_for_a_snapshot() {
        let registry = serve_like_registry();
        let tracker = SloTracker::new(SloPolicy::default());
        let snapshot = registry.snapshot();
        let report = tracker.report();
        assert_eq!(render(&snapshot, &report, 0), render(&snapshot, &report, 0));
    }

    #[test]
    fn sanitize_maps_dots_and_leading_digits() {
        assert_eq!(sanitize("serve.cache.hit"), "serve_cache_hit");
        assert_eq!(sanitize("0weird"), "_0weird");
        assert_eq!(sanitize("a-b c"), "a_b_c");
    }
}
