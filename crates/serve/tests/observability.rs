//! End-to-end checks of the live-telemetry layer: `/metrics` must be
//! valid Prometheus text whose counts match client-side truth,
//! `x-trace: 1` must return a coherent span tree around the exact
//! result bytes, a panicking handler must answer 500 without leaking
//! the in-flight gauge, the access log must write exactly one
//! well-formed JSONL line per request (malformed traffic included),
//! and `/healthz` must surface SLO standings.
//!
//! The obs registry is process-global and tests in this binary run
//! concurrently, so every counter assertion is a *delta* over a kind
//! that only its own test drives.

#![cfg(not(feature = "no-obs"))]

use hpcfail_core::engine::{AnalysisRequest, Engine};
use hpcfail_obs::json::Json;
use hpcfail_serve::client::Client;
use hpcfail_serve::server::{spawn, ServerConfig};
use hpcfail_serve::slo::SloPolicy;
use hpcfail_serve::{promtext, top};
use std::time::Duration;

fn engine() -> Engine {
    Engine::new(hpcfail_synth::FleetSpec::demo().generate(42).into_store())
}

fn scrape(client: &Client) -> promtext::Scrape {
    let response = client.get("/metrics").expect("scrape");
    assert_eq!(response.status, 200);
    assert!(
        response
            .header("content-type")
            .is_some_and(|ct| ct.starts_with("text/plain")),
        "metrics content type: {:?}",
        response.header("content-type")
    );
    promtext::parse(&response.body).expect("scrape is valid Prometheus text")
}

#[test]
fn metrics_scrape_is_valid_and_counts_match_the_client() {
    let handle = spawn(engine(), ServerConfig::default()).expect("bind");
    let client = Client::new(handle.addr().to_string());
    // This kind is driven by this test alone (see module docs).
    let request = AnalysisRequest::EnvBreakdown.canonical();
    let kind = "env-breakdown";

    let before = scrape(&client);
    let kind_before = before
        .value("serve_requests_by_kind_total", &[("kind", kind)])
        .unwrap_or(0.0);
    let hits_before = before
        .value("serve_cache_requests_total", &[("result", "hit")])
        .unwrap_or(0.0);

    const N: usize = 8;
    for _ in 0..N {
        let response = client.post("/query", &request, &[]).expect("query");
        assert_eq!(response.status, 200);
        assert!(
            response
                .header("x-trace-id")
                .is_some_and(|id| id.len() == 16),
            "every response echoes a trace id"
        );
    }

    let after = scrape(&client);
    let kind_after = after
        .value("serve_requests_by_kind_total", &[("kind", kind)])
        .expect("per-kind series present");
    assert_eq!(
        (kind_after - kind_before) as u64,
        N as u64,
        "server-side per-kind total equals the client-side count"
    );
    // 1 miss then 7 hits (single client, no concurrency on this kind).
    let hits_after = after
        .value("serve_cache_requests_total", &[("result", "hit")])
        .expect("cache hit series present");
    assert!(
        hits_after - hits_before >= (N - 1) as f64,
        "warm repeats hit the cache: {hits_before} -> {hits_after}"
    );
    // Latency summaries carry the full quantile ladder for the kind.
    for quantile in ["0.5", "0.9", "0.95", "0.99"] {
        assert!(
            after
                .value(
                    "serve_request_latency_ns",
                    &[("kind", kind), ("quantile", quantile)]
                )
                .is_some(),
            "lifetime p{quantile} present"
        );
        assert!(
            after
                .value(
                    "serve_window_latency_ns",
                    &[("kind", kind), ("quantile", quantile)]
                )
                .is_some(),
            "windowed p{quantile} present"
        );
    }
    assert_eq!(after.types["serve_requests_total"], "counter");
    assert_eq!(after.types["serve_window_latency_ns"], "summary");
    assert!(after.value("serve_inflight", &[]).is_some());

    handle.shutdown();
}

fn sum_self_ns(node: &Json) -> f64 {
    let own = node
        .get("self_ns")
        .and_then(Json::as_f64)
        .unwrap_or_default();
    let children = node
        .get("children")
        .and_then(Json::as_arr)
        .map(|c| c.iter().map(sum_self_ns).sum::<f64>())
        .unwrap_or(0.0);
    own + children
}

#[test]
fn x_trace_returns_a_span_tree_around_the_exact_bytes() {
    let engine = engine();
    let request = AnalysisRequest::Availability { system: None };
    let direct = engine.run(&request).to_json().pretty();

    let handle = spawn(engine, ServerConfig::default()).expect("bind");
    let client = Client::new(handle.addr().to_string());
    let response = client
        .post("/query", &request.canonical(), &[("x-trace", "1")])
        .expect("traced query");
    assert_eq!(response.status, 200);

    let json = hpcfail_obs::json::parse(&response.body).expect("wrapped body is JSON");
    assert_eq!(
        json.get("result").and_then(Json::as_str),
        Some(direct.as_str()),
        "the exact /query bytes survive inside the wrap"
    );
    let trace_id = json
        .get("trace_id")
        .and_then(Json::as_str)
        .expect("trace id in body");
    assert_eq!(
        response.header("x-trace-id"),
        Some(trace_id),
        "header and body agree on the trace id"
    );

    let trace = json.get("trace").expect("span tree present");
    assert_eq!(trace.get("trace_id").and_then(Json::as_str), Some(trace_id));
    let root = trace.get("root").expect("root span");
    assert_eq!(
        root.get("name").and_then(Json::as_str),
        Some("serve.request")
    );
    assert_eq!(root.get("parent_id").and_then(Json::as_u64), Some(0));
    let root_total = root
        .get("total_ns")
        .and_then(Json::as_f64)
        .expect("root duration");
    let children_self: f64 = root
        .get("children")
        .and_then(Json::as_arr)
        .map(|c| c.iter().map(sum_self_ns).sum())
        .unwrap_or(0.0);
    assert!(
        root_total >= children_self,
        "root duration {root_total} covers the sum of child self times {children_self}"
    );
    // The root span carries the request attributes.
    let attrs = root.get("attrs").expect("root attrs");
    assert_eq!(attrs.get("path").and_then(Json::as_str), Some("/query"));
    assert_eq!(
        attrs.get("kind").and_then(Json::as_str),
        Some("availability")
    );

    // The engine's own span shows up beneath serve.query.<kind> on a
    // cold query (this kind is driven by this test alone).
    let spans = trace.get("spans").and_then(Json::as_u64).expect("count");
    assert!(spans >= 2, "cold traced query captures nested spans");

    handle.shutdown();
}

#[test]
fn panicking_handler_answers_500_and_releases_the_inflight_gauge() {
    let handle = spawn(
        engine(),
        ServerConfig {
            inject_panic_kind: Some("trace-summary".to_owned()),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let client = Client::new(handle.addr().to_string());

    let response = client
        .post("/query", &AnalysisRequest::TraceSummary.canonical(), &[])
        .expect("panicking query still answers");
    assert_eq!(response.status, 500);
    assert!(
        response.body.contains("\"error\""),
        "typed body: {}",
        response.body
    );
    assert!(response.header("x-trace-id").is_some());
    assert_eq!(
        handle.inflight(),
        0,
        "in-flight gauge decremented despite the panic"
    );
    // The worker survived; the server keeps serving.
    let health = client.get("/healthz").expect("alive after panic");
    assert_eq!(health.status, 200);

    handle.shutdown();
}

#[test]
fn access_log_writes_exactly_one_line_per_request() {
    let dir = std::env::temp_dir().join("hpcfail-serve-obs-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("access-{}.jsonl", std::process::id()));
    std::fs::remove_file(&path).ok();

    let handle = spawn(
        engine(),
        ServerConfig {
            access_log: Some(path.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let client = Client::new(handle.addr().to_string());

    let mut expected_lines = 0;
    // A normal query.
    let ok = client
        .post("/query", &AnalysisRequest::EnvBreakdown.canonical(), &[])
        .expect("query");
    assert_eq!(ok.status, 200);
    expected_lines += 1;
    // A malformed body: parses as HTTP, fails as JSON -> 400, logged.
    let bad = client.post("/query", "{nope", &[]).expect("bad body");
    assert_eq!(bad.status, 400);
    expected_lines += 1;
    // Raw protocol garbage: not even HTTP -> one http-error line.
    {
        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(handle.addr()).expect("connect");
        raw.write_all(b"\x01\x02\x03 garbage\r\n\r\n")
            .expect("write");
        let mut out = String::new();
        let _ = raw.read_to_string(&mut out);
        expected_lines += 1;
    }
    // An oversized body: rejected with 413, logged.
    {
        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(handle.addr()).expect("connect");
        let head = format!(
            "POST /query HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            hpcfail_serve::http::MAX_BODY + 1
        );
        raw.write_all(head.as_bytes()).expect("write");
        let mut out = String::new();
        let _ = raw.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 413"), "got: {out}");
        expected_lines += 1;
    }
    handle.shutdown();

    let text = std::fs::read_to_string(&path).expect("access log exists");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(
        lines.len(),
        expected_lines,
        "exactly one line per request:\n{text}"
    );
    let mut kinds = Vec::new();
    let mut statuses = Vec::new();
    for line in &lines {
        let entry = hpcfail_obs::json::parse(line).expect("every line is valid JSON");
        for key in [
            "bytes_out",
            "cache",
            "deadline_ms",
            "kind",
            "latency_us",
            "method",
            "path",
            "shed",
            "status",
            "trace_id",
        ] {
            assert!(entry.get(key).is_some(), "line missing {key}: {line}");
        }
        kinds.push(
            entry
                .get("kind")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
        );
        statuses.push(entry.get("status").and_then(Json::as_u64).unwrap_or(0));
    }
    assert!(kinds.contains(&"env-breakdown".to_owned()));
    assert_eq!(
        kinds.iter().filter(|k| *k == "http-error").count(),
        2,
        "garbage and oversized requests each log one http-error line"
    );
    assert!(
        statuses.contains(&400) && statuses.contains(&413),
        "{statuses:?}"
    );

    std::fs::remove_file(&path).ok();
}

#[test]
fn tight_slo_budget_degrades_healthz() {
    // Inject a panic so the "panic" kind records a 100% error rate,
    // blowing any error budget.
    let handle = spawn(
        engine(),
        ServerConfig {
            inject_panic_kind: Some("equal-rates-test".to_owned()),
            slo: SloPolicy {
                latency_budget_ms: 500,
                max_error_rate: 0.01,
                ..SloPolicy::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let client = Client::new(handle.addr().to_string());

    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    let body = hpcfail_obs::json::parse(&health.body).expect("json");
    assert!(body.get("fingerprint").is_some(), "fingerprint kept");
    assert!(body.get("slo").is_some(), "slo standings present");

    let request = AnalysisRequest::EqualRatesTest {
        system: hpcfail_types::prelude::SystemId::new(2),
        class: hpcfail_types::prelude::FailureClass::Any,
        exclude_node0: false,
    };
    let response = client
        .post("/query", &request.canonical(), &[])
        .expect("panicking query");
    assert_eq!(response.status, 500);

    let health = client.get("/healthz").expect("healthz after errors");
    let body = hpcfail_obs::json::parse(&health.body).expect("json");
    assert_eq!(
        body.get("status").and_then(Json::as_str),
        Some("degraded"),
        "{}",
        health.body
    );
    let kind = body
        .get("slo")
        .and_then(|s| s.get("kinds"))
        .and_then(|k| k.get("panic"))
        .expect("the failing kind is reported");
    assert_eq!(kind.get("errors_ok").and_then(Json::as_bool), Some(false));

    // /metrics mirrors the standing.
    let scraped = scrape(&client);
    assert_eq!(scraped.value("serve_slo_healthy", &[]), Some(0.0));
    assert_eq!(
        scraped.value("serve_slo_ok", &[("kind", "panic")]),
        Some(0.0)
    );

    handle.shutdown();
}

#[test]
fn top_renders_per_kind_rows_from_a_live_server() {
    let handle = spawn(engine(), ServerConfig::default()).expect("bind");
    let client = Client::new(handle.addr().to_string());
    let request = AnalysisRequest::HeaviestUsers {
        system: hpcfail_types::prelude::SystemId::new(2),
        k: 5,
    }
    .canonical();
    for _ in 0..3 {
        assert_eq!(
            client.post("/query", &request, &[]).expect("query").status,
            200
        );
    }

    let mut out = Vec::new();
    top::run(
        &top::TopOptions {
            addr: handle.addr().to_string(),
            interval: Duration::from_millis(50),
            frames: Some(2),
            clear: false,
        },
        &mut out,
    )
    .expect("top runs against the live server");
    let text = String::from_utf8(out).expect("utf-8");
    assert!(text.contains("hpcfail-serve top"), "{text}");
    assert!(
        text.contains("heaviest-users"),
        "per-kind row rendered:\n{text}"
    );
    assert!(text.contains("window p99"), "{text}");

    handle.shutdown();
}
