//! End-to-end smoke of the query service: sustained concurrent load
//! must answer byte-identically to direct `Engine` calls, the cache
//! must actually hit, warm queries must be clearly cheaper than cold
//! ones, malformed traffic must get typed 4xx answers, and shutdown
//! must be clean.

use hpcfail_core::correlation::Scope;
use hpcfail_core::engine::{AnalysisRequest, Engine};
use hpcfail_core::power::PowerProblem;
use hpcfail_core::regression_study::StudyFamily;
use hpcfail_core::temperature::TempPredictor;
use hpcfail_serve::client::Client;
use hpcfail_serve::server::{spawn, ServerConfig};
use hpcfail_types::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn engine() -> Engine {
    Engine::new(hpcfail_synth::FleetSpec::demo().generate(42).into_store())
}

/// A mixed bag of requests spanning cheap and expensive analyses.
fn query_mix() -> Vec<AnalysisRequest> {
    vec![
        AnalysisRequest::TraceSummary,
        AnalysisRequest::Conditional {
            group: SystemGroup::Group1,
            trigger: FailureClass::Any,
            target: FailureClass::Any,
            window: Window::Day,
            scope: Scope::SameNode,
        },
        AnalysisRequest::FleetConditional {
            trigger: FailureClass::Root(RootCause::Hardware),
            target: FailureClass::Any,
            window: Window::Week,
            scope: Scope::SameNode,
        },
        AnalysisRequest::SameTypeSummaries {
            group: SystemGroup::Group1,
            window: Window::Day,
            scope: Scope::SameNode,
        },
        AnalysisRequest::NodeFailureCounts {
            system: SystemId::new(20),
        },
        AnalysisRequest::EqualRatesTest {
            system: SystemId::new(20),
            class: FailureClass::Any,
            exclude_node0: true,
        },
        AnalysisRequest::NodeVsRest {
            system: SystemId::new(2),
            node: NodeId::new(0),
            class: FailureClass::Any,
            window: Window::Month,
        },
        AnalysisRequest::RootCauseShares {
            system: SystemId::new(20),
            nodes: vec![NodeId::new(0), NodeId::new(1)],
        },
        AnalysisRequest::UsageCorrelations {
            system: SystemId::new(20),
        },
        AnalysisRequest::HeaviestUsers {
            system: SystemId::new(20),
            k: 10,
        },
        AnalysisRequest::EnvBreakdown,
        AnalysisRequest::PowerConditional {
            problem: PowerProblem::Outage,
            target: FailureClass::Any,
            window: Window::Day,
        },
        AnalysisRequest::TemperatureRegression {
            system: SystemId::new(20),
            predictor: TempPredictor::Average,
            target: FailureClass::Any,
            family: StudyFamily::Poisson,
        },
        AnalysisRequest::RegressionStudy {
            system: SystemId::new(20),
            family: StudyFamily::Poisson,
            exclude_node0: false,
        },
        AnalysisRequest::ArrivalProfile {
            system: SystemId::new(20),
            class: FailureClass::Any,
        },
        AnalysisRequest::Availability { system: None },
    ]
}

#[test]
fn concurrent_load_matches_direct_engine_calls() {
    let engine = engine();
    let mix = query_mix();
    // Ground truth computed in-process, before any serving.
    let expected: BTreeMap<String, String> = mix
        .iter()
        .map(|r| (r.canonical(), engine.run(r).to_json().pretty()))
        .collect();

    let handle = spawn(
        engine,
        ServerConfig {
            workers: 8,
            cache_capacity: 256,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = handle.addr().to_string();

    const CLIENTS: usize = 64;
    const QUERIES_PER_CLIENT: usize = 16;
    let mix = Arc::new(mix);
    let expected = Arc::new(expected);
    let mut joins = Vec::new();
    for c in 0..CLIENTS {
        let mix = Arc::clone(&mix);
        let expected = Arc::clone(&expected);
        let addr = addr.clone();
        joins.push(std::thread::spawn(move || {
            let client = Client::new(addr);
            for q in 0..QUERIES_PER_CLIENT {
                let request = &mix[(c * 7 + q * 3) % mix.len()];
                let response = client
                    .post("/query", &request.canonical(), &[])
                    .expect("query round trip");
                assert_eq!(response.status, 200, "body: {}", response.body);
                assert!(
                    matches!(
                        response.header("x-cache"),
                        Some("hit" | "miss" | "coalesced")
                    ),
                    "x-cache header present"
                );
                let want = &expected[&request.canonical()];
                assert_eq!(
                    &response.body,
                    want,
                    "served bytes differ from direct engine call for {}",
                    request.kind()
                );
            }
        }));
    }
    for join in joins {
        join.join().expect("client thread");
    }

    // Counter assertions only make sense when instrumentation is compiled in.
    #[cfg(not(feature = "no-obs"))]
    {
        let snapshot = hpcfail_obs::snapshot();
        let hits = snapshot
            .counters
            .get("serve.cache.hit")
            .copied()
            .unwrap_or(0);
        let misses = snapshot
            .counters
            .get("serve.cache.miss")
            .copied()
            .unwrap_or(0);
        assert!(
            hits > 0,
            "1024 queries over 16 distinct requests must hit the cache"
        );
        assert!(misses > 0, "first-time queries must miss");
        assert!(
            snapshot
                .counters
                .get("serve.requests")
                .copied()
                .unwrap_or(0)
                >= (CLIENTS * QUERIES_PER_CLIENT) as u64,
            "every request counted"
        );
    }

    handle.shutdown();
}

#[test]
fn warm_queries_beat_cold_queries() {
    let handle = spawn(
        engine(),
        ServerConfig {
            workers: 4,
            cache_capacity: 64,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let client = Client::new(handle.addr().to_string());
    // The heaviest query in the mix: 8 classes × 2 pooled estimates.
    let request = AnalysisRequest::SameTypeSummaries {
        group: SystemGroup::Group1,
        window: Window::Week,
        scope: Scope::SameNode,
    }
    .canonical();

    // Retry the timing comparison to keep scheduler noise from
    // flaking the test; the assertion is on the best observed ratio.
    let mut best_ratio = f64::INFINITY;
    for attempt in 0..3 {
        let cold_request = AnalysisRequest::SameTypeSummaries {
            group: SystemGroup::Group1,
            window: [Window::Day, Window::Week, Window::Month][attempt],
            scope: Scope::SameRack,
        }
        .canonical();
        let start = Instant::now();
        let cold = client.post("/query", &cold_request, &[]).expect("cold");
        let cold_elapsed = start.elapsed();
        assert_eq!(cold.header("x-cache"), Some("miss"));

        let mut warm_times = Vec::new();
        for _ in 0..11 {
            let start = Instant::now();
            let warm = client.post("/query", &cold_request, &[]).expect("warm");
            warm_times.push(start.elapsed());
            assert_eq!(warm.header("x-cache"), Some("hit"));
            assert_eq!(warm.body, cold.body, "warm bytes equal cold bytes");
        }
        warm_times.sort();
        let warm_median = warm_times[warm_times.len() / 2];
        let ratio = warm_median.as_secs_f64() / cold_elapsed.as_secs_f64().max(1e-9);
        best_ratio = best_ratio.min(ratio);
        println!(
            "attempt {attempt}: cold {:?}, warm median {:?}, ratio {ratio:.3}",
            cold_elapsed, warm_median
        );
        if best_ratio < 0.5 {
            break;
        }
    }
    assert!(
        best_ratio < 0.5,
        "warm-cache median must be well under cold latency (best ratio {best_ratio:.3})"
    );
    let _ = request;

    handle.shutdown();
}

#[test]
fn batch_answers_align_with_requests() {
    let engine = engine();
    let mix = query_mix();
    let expected: Vec<String> = mix
        .iter()
        .map(|r| engine.run(r).to_json().pretty())
        .collect();
    let handle = spawn(engine, ServerConfig::default()).expect("bind");
    let client = Client::new(handle.addr().to_string());

    let batch = format!(
        "[{}]",
        mix.iter()
            .map(|r| r.to_json().pretty().trim_end().to_owned())
            .collect::<Vec<_>>()
            .join(",")
    );
    let response = client.post("/batch", &batch, &[]).expect("batch");
    assert_eq!(response.status, 200, "body: {}", response.body);
    let json = hpcfail_obs::json::parse(&response.body).expect("valid JSON");
    let results = json
        .get("results")
        .and_then(|r| r.as_arr())
        .expect("results array");
    assert_eq!(results.len(), mix.len());
    for (i, (result, want)) in results.iter().zip(&expected).enumerate() {
        assert_eq!(
            result.as_str(),
            Some(want.as_str()),
            "batch item {i} ({}) differs from direct call",
            mix[i].kind()
        );
    }

    handle.shutdown();
}

#[test]
fn malformed_traffic_gets_typed_errors_not_panics() {
    let handle = spawn(engine(), ServerConfig::default()).expect("bind");
    let client = Client::new(handle.addr().to_string());

    // Malformed JSON.
    let r = client.post("/query", "{nope", &[]).expect("round trip");
    assert_eq!(r.status, 400);
    assert!(r.body.contains("\"error\""), "typed body: {}", r.body);

    // Valid JSON, unknown kind.
    let r = client
        .post("/query", r#"{"analysis": "launch-missiles"}"#, &[])
        .expect("round trip");
    assert_eq!(r.status, 400);
    assert!(r.body.contains("unknown analysis kind"));

    // Valid kind, missing field.
    let r = client
        .post("/query", r#"{"analysis": "conditional"}"#, &[])
        .expect("round trip");
    assert_eq!(r.status, 400);
    assert!(r.body.contains("missing field"));

    // Mistyped field.
    let r = client
        .post(
            "/query",
            r#"{"analysis": "node-failure-counts", "system": "twenty"}"#,
            &[],
        )
        .expect("round trip");
    assert_eq!(r.status, 400);

    // Batch with one bad item names the index.
    let r = client
        .post(
            "/batch",
            r#"[{"analysis": "trace-summary"}, {"analysis": "nope"}]"#,
            &[],
        )
        .expect("round trip");
    assert_eq!(r.status, 400);
    assert!(r.body.contains("batch item 1"));

    // Unknown path and wrong method.
    let r = client.get("/nope").expect("round trip");
    assert_eq!(r.status, 404);
    let r = client.get("/query").expect("round trip");
    assert_eq!(r.status, 405);

    // Raw protocol garbage: the server answers 400 (or drops the
    // connection) but keeps serving afterwards.
    {
        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(handle.addr()).expect("connect");
        raw.write_all(b"\x01\x02\x03 garbage\r\n\r\n")
            .expect("write");
        let mut out = String::new();
        let _ = raw.read_to_string(&mut out);
        assert!(out.is_empty() || out.starts_with("HTTP/1.1 400"));
    }
    let r = client.get("/healthz").expect("server still alive");
    assert_eq!(r.status, 200);

    handle.shutdown();
}

#[test]
fn shutdown_endpoint_stops_the_server() {
    let handle = spawn(engine(), ServerConfig::default()).expect("bind");
    let addr = handle.addr();
    let client = Client::new(addr.to_string());

    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert!(health.body.contains("fingerprint"));

    let kinds = client.get("/requests").expect("requests");
    assert!(kinds.body.contains("same-type-summaries"));

    let bye = client.post("/shutdown", "", &[]).expect("shutdown ack");
    assert_eq!(bye.status, 200);
    let deadline = Instant::now() + Duration::from_secs(5);
    while !handle.is_shutting_down() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(handle.is_shutting_down(), "shutdown flag set via endpoint");
    handle.shutdown();

    // The listener is gone: a fresh query must fail.
    let gone = Client::new(addr.to_string())
        .with_timeout(Duration::from_millis(500))
        .get("/healthz");
    assert!(gone.is_err(), "server must stop accepting after shutdown");
}

#[test]
fn deadline_header_degrades_instead_of_blocking() {
    // A follower with an already-expired deadline must get a typed 504
    // rather than waiting. Simulate by claiming the flight directly —
    // driving a real slow leader through the socket would be timing-
    // dependent — then sending the query with a 1ms deadline while the
    // flight is held open.
    use hpcfail_serve::coalesce::{Claim, Coalescer};

    let coalescer = Coalescer::new();
    let key = ("default".to_owned(), 1u64, "q".to_owned());
    let _leader = match coalescer.claim(&key) {
        Claim::Leader(guard) => guard,
        Claim::Follower(_) => panic!("fresh key must lead"),
    };
    match coalescer.claim(&key) {
        Claim::Follower(flight) => {
            assert!(flight.wait(Instant::now()).is_none(), "expired deadline");
        }
        Claim::Leader(_) => panic!("second claim must follow"),
    }
}
