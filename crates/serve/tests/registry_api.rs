//! The versioned, trace-scoped serving API end to end: uploads through
//! the ingest machinery, multi-tenant byte-identity, epoch hot-swap
//! under concurrent load, cache isolation across re-uploads, typed
//! eviction, and the legacy surface's deprecation marking.

use hpcfail_core::engine::{AnalysisRequest, Engine};
use hpcfail_serve::client::Client;
use hpcfail_serve::registry::{TraceRegistry, TraceSource};
use hpcfail_serve::server::{spawn, spawn_with_registry, ServerConfig};
use hpcfail_store::snapshot::snapshot_bytes;
use hpcfail_store::trace::Trace;
use hpcfail_synth::FleetSpec;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SAMPLE_CSV: &str = "\
System,NodeNum,Prob Started,Prob Fixed,Cause,SubCause
20,0,10/23/2003 14:55,10/23/2003 18:20,Hardware,Memory Dimm
20,17,11/02/2003 03:10,,Facilities,Power Outage
2,5,01/15/1997 09:00,01/15/1997 10:30,Human Error,
";

fn small_trace(seed: u64) -> Trace {
    FleetSpec::lanl_scaled(0.02).generate(seed).into_store()
}

/// The server's exact body for `request_body` against `trace`.
fn direct_body(trace: Trace, request_body: &str) -> String {
    let request = AnalysisRequest::parse(request_body).expect("request");
    Engine::new(trace).run(&request).to_json().pretty()
}

/// Three named traces served concurrently: each query body is
/// byte-identical to a direct `Engine::run` against that trace, the
/// listing shows all three with distinct fingerprints, and the CSV
/// upload reports its ingest audit.
#[test]
fn three_named_traces_serve_with_byte_identity() {
    let handle = spawn_with_registry(TraceRegistry::new(0), ServerConfig::default()).expect("bind");
    let client = Client::new(handle.addr().to_string());

    // Empty registry: a query against any name is a typed 404.
    let miss = client
        .post(
            "/v1/traces/lanl/query",
            r#"{"analysis": "trace-summary"}"#,
            &[],
        )
        .expect("round trip");
    assert_eq!(miss.status, 404, "body: {}", miss.body);
    assert!(miss.body.contains("\"error\""), "typed: {}", miss.body);

    // Upload two snapshots and one CSV under distinct names.
    for (name, seed) in [("lanl", 1u64), ("fleet-b", 2u64)] {
        let bytes = snapshot_bytes(&small_trace(seed));
        let up = client
            .post_bytes(&format!("/v1/traces/{name}"), &bytes, &[])
            .expect("upload");
        assert_eq!(up.status, 200, "body: {}", up.body);
        assert!(up.body.contains("\"source\": \"snapshot\""), "{}", up.body);
    }
    let up = client
        .post_bytes(
            "/v1/traces/sample.csv",
            SAMPLE_CSV.as_bytes(),
            &[("x-ingest-policy", "strict")],
        )
        .expect("upload csv");
    assert_eq!(up.status, 200, "body: {}", up.body);
    assert!(up.body.contains("\"rows_ok\": 3"), "{}", up.body);
    assert!(up.body.contains("\"policy\": \"strict\""), "{}", up.body);
    assert!(up.body.contains("\"source\": \"csv\""), "{}", up.body);

    // Every trace answers with bytes identical to a direct engine run.
    for kind in ["trace-summary", "env-breakdown"] {
        let body = format!("{{\"analysis\": \"{kind}\"}}");
        for (name, seed) in [
            ("lanl", Some(1u64)),
            ("fleet-b", Some(2)),
            ("sample.csv", None),
        ] {
            let expected = match seed {
                Some(seed) => direct_body(small_trace(seed), &body),
                None => {
                    let read = hpcfail_store::lanl::read_lanl_failures_with(
                        SAMPLE_CSV.as_bytes(),
                        "test",
                        hpcfail_store::lanl::LanlImportOptions::default(),
                        hpcfail_store::ingest::IngestPolicy::Strict,
                    )
                    .expect("csv");
                    direct_body(
                        hpcfail_store::lanl::assemble_trace(read.records, &[]),
                        &body,
                    )
                }
            };
            let served = client
                .post(&format!("/v1/traces/{name}/query"), &body, &[])
                .expect("query");
            assert_eq!(served.status, 200, "{name}: {}", served.body);
            assert_eq!(served.body, expected, "byte identity for {name}/{kind}");
            assert!(
                served.header("x-api-deprecated").is_none(),
                "v1 responses carry no deprecation marker"
            );
        }
    }

    // The listing shows all three with distinct fingerprints.
    let listing = client.get("/v1/traces").expect("listing");
    assert_eq!(listing.status, 200);
    let json = hpcfail_obs::json::parse(&listing.body).expect("json");
    let rows = json.get("traces").and_then(|t| t.as_arr()).unwrap();
    assert_eq!(rows.len(), 3, "{}", listing.body);
    let mut fingerprints: Vec<String> = rows
        .iter()
        .map(|r| {
            r.get("fingerprint")
                .and_then(hpcfail_obs::json::Json::as_str)
                .unwrap()
                .to_owned()
        })
        .collect();
    fingerprints.sort();
    fingerprints.dedup();
    assert_eq!(fingerprints.len(), 3, "distinct per-trace fingerprints");

    // Registry gauges are live.
    assert_eq!(handle.registry().len(), 3);
    assert!(handle.registry().resident_bytes() > 0);
    handle.shutdown();
}

/// Satellite 2: re-uploading the *same name* with *different data*
/// never serves the predecessor's cached bytes — the epoch fingerprint
/// in the cache key isolates them — while a hit within one epoch still
/// works.
#[test]
fn reupload_never_serves_stale_cache() {
    let handle = spawn_with_registry(TraceRegistry::new(0), ServerConfig::default()).expect("bind");
    let client = Client::new(handle.addr().to_string());
    let body = r#"{"analysis": "trace-summary"}"#;

    let first_bytes = snapshot_bytes(&small_trace(7));
    let up = client
        .post_bytes("/v1/traces/t", &first_bytes, &[])
        .expect("upload 1");
    assert_eq!(up.status, 200, "{}", up.body);

    let miss = client.post("/v1/traces/t/query", body, &[]).expect("q1");
    assert_eq!(miss.header("x-cache"), Some("miss"));
    let hit = client.post("/v1/traces/t/query", body, &[]).expect("q2");
    assert_eq!(hit.header("x-cache"), Some("hit"));
    assert_eq!(hit.body, miss.body, "a hit returns the same bytes");

    // Swap in different data under the same name.
    let up = client
        .post_bytes("/v1/traces/t", &snapshot_bytes(&small_trace(8)), &[])
        .expect("upload 2");
    assert_eq!(up.status, 200, "{}", up.body);

    let fresh = client.post("/v1/traces/t/query", body, &[]).expect("q3");
    assert_eq!(
        fresh.header("x-cache"),
        Some("miss"),
        "new epoch must not hit the old epoch's cache"
    );
    assert_ne!(fresh.body, miss.body, "new data, new answer");
    assert_eq!(fresh.body, direct_body(small_trace(8), body));

    // Re-uploading *identical* data keeps the warm cache (same
    // fingerprint, same key).
    let up = client
        .post_bytes("/v1/traces/t", &snapshot_bytes(&small_trace(8)), &[])
        .expect("upload 3");
    assert_eq!(up.status, 200, "{}", up.body);
    let warm = client.post("/v1/traces/t/query", body, &[]).expect("q4");
    assert_eq!(warm.header("x-cache"), Some("hit"));
    assert_eq!(warm.body, fresh.body);
    handle.shutdown();
}

/// Eviction is typed end to end: DELETE answers with the evicted
/// summary, a second DELETE and any later query answer a typed 404,
/// and the registry gauge drops.
#[test]
fn evicted_traces_answer_typed_404() {
    let registry = TraceRegistry::new(0);
    registry.insert("doomed", small_trace(3), TraceSource::Boot);
    registry.insert("keeper", small_trace(4), TraceSource::Boot);
    let handle = spawn_with_registry(registry, ServerConfig::default()).expect("bind");
    let client = Client::new(handle.addr().to_string());

    let gone = client.delete("/v1/traces/doomed").expect("evict");
    assert_eq!(gone.status, 200, "{}", gone.body);
    assert!(gone.body.contains("\"evicted\""), "{}", gone.body);
    assert!(gone.body.contains("\"name\": \"doomed\""), "{}", gone.body);

    let again = client.delete("/v1/traces/doomed").expect("re-evict");
    assert_eq!(again.status, 404, "{}", again.body);
    assert!(again.body.contains("\"error\""), "typed: {}", again.body);

    let query = client
        .post(
            "/v1/traces/doomed/query",
            r#"{"analysis": "trace-summary"}"#,
            &[],
        )
        .expect("query gone");
    assert_eq!(query.status, 404, "{}", query.body);
    assert!(query.body.contains("no trace named"), "{}", query.body);

    let show = client.get("/v1/traces/doomed").expect("show");
    assert_eq!(show.status, 404);

    // The survivor is untouched.
    let ok = client
        .post(
            "/v1/traces/keeper/query",
            r#"{"analysis": "trace-summary"}"#,
            &[],
        )
        .expect("survivor");
    assert_eq!(ok.status, 200);
    assert_eq!(handle.registry().len(), 1);
    handle.shutdown();
}

/// Legacy endpoints keep answering against the `default` trace with
/// `x-api-deprecated: true` on every response and a `deprecation`
/// field in extensible control bodies — while analysis bodies stay
/// byte-identical to their `/v1` equivalents.
#[test]
fn legacy_surface_is_marked_deprecated_v1_is_not() {
    let engine = Engine::new(small_trace(5));
    let handle = spawn(engine, ServerConfig::default()).expect("bind");
    let client = Client::new(handle.addr().to_string());
    let body = r#"{"analysis": "env-breakdown"}"#;

    let legacy = client.post("/query", body, &[]).expect("legacy query");
    let v1 = client
        .post("/v1/traces/default/query", body, &[])
        .expect("v1 query");
    assert_eq!(legacy.status, 200);
    assert_eq!(legacy.header("x-api-deprecated"), Some("true"));
    assert!(v1.header("x-api-deprecated").is_none());
    assert_eq!(
        legacy.body, v1.body,
        "legacy and v1 answer identical bytes for the default trace"
    );
    assert!(
        !legacy.body.contains("deprecation"),
        "analysis bodies are contractual — no injected fields"
    );

    for path in ["/healthz", "/requests"] {
        let response = client.get(path).expect(path);
        assert_eq!(response.header("x-api-deprecated"), Some("true"), "{path}");
        assert!(
            response.body.contains("\"deprecation\": true"),
            "{path}: {}",
            response.body
        );
        let versioned = client.get(&format!("/v1{path}")).expect(path);
        assert!(versioned.header("x-api-deprecated").is_none(), "{path}");
        assert!(
            !versioned.body.contains("\"deprecation\""),
            "/v1{path}: {}",
            versioned.body
        );
    }
    let metrics = client.get("/metrics").expect("legacy metrics");
    assert_eq!(metrics.header("x-api-deprecated"), Some("true"));
    handle.shutdown();
}

/// Unknown paths and wrong methods answer typed 404/405 (the 405 with
/// an `allow` header), matching the central route table.
#[test]
fn unmatched_routes_answer_typed_404_and_405() {
    let handle = spawn_with_registry(TraceRegistry::new(0), ServerConfig::default()).expect("bind");
    let client = Client::new(handle.addr().to_string());

    let missing = client.get("/v2/healthz").expect("404");
    assert_eq!(missing.status, 404);
    assert!(missing.body.contains("unknown path"), "{}", missing.body);

    let wrong = client.post("/v1/healthz", "", &[]).expect("405");
    assert_eq!(wrong.status, 405, "{}", wrong.body);
    assert_eq!(wrong.header("allow"), Some("GET"));

    let bad_name = client
        .post_bytes("/v1/traces/.hidden", b"x", &[])
        .expect("bad name");
    assert_eq!(bad_name.status, 400, "dot-names are rejected as invalid");
    assert!(
        bad_name.body.contains("invalid trace name"),
        "{}",
        bad_name.body
    );
    handle.shutdown();
}

/// The tentpole soak: hammer one name with concurrent queries while
/// re-uploading it mid-storm. Zero 5xx, zero torn responses (every
/// body is byte-identical to one of the two epochs' direct answers), a
/// query pinned to the old epoch still answers the old bytes, and the
/// old epoch's memory is released once its last pin drops.
#[test]
fn hot_swap_under_load_drops_nothing() {
    let registry = TraceRegistry::new(0);
    registry.insert("storm", small_trace(11), TraceSource::Boot);
    let handle = spawn_with_registry(
        registry,
        ServerConfig {
            workers: 8,
            // Disable the cache so every answer exercises the engine
            // (a cached body would mask a torn epoch).
            cache_capacity: 0,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = handle.addr().to_string();
    let body = r#"{"analysis": "env-breakdown"}"#;
    let old_expected = direct_body(small_trace(11), body);
    let new_expected = direct_body(small_trace(12), body);
    assert_ne!(old_expected, new_expected, "the swap must be observable");

    // Pin the old epoch the way an in-flight query does.
    let pinned = handle.registry().resolve("storm").expect("warm");
    let old_weak = Arc::downgrade(&pinned.engine);
    let baseline = handle.registry().resident_bytes();

    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let client = Client::new(addr);
                let mut statuses = Vec::new();
                let mut bodies = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let response = client
                        .post(
                            "/v1/traces/storm/query",
                            r#"{"analysis": "env-breakdown"}"#,
                            &[],
                        )
                        .expect("query round trip");
                    statuses.push(response.status);
                    bodies.push(response.body);
                }
                (statuses, bodies)
            })
        })
        .collect();

    // Re-upload mid-storm (twice, to exercise repeated swaps).
    std::thread::sleep(Duration::from_millis(100));
    let client = Client::new(addr.clone());
    for _ in 0..2 {
        let up = client
            .post_bytes("/v1/traces/storm", &snapshot_bytes(&small_trace(12)), &[])
            .expect("swap upload");
        assert_eq!(up.status, 200, "{}", up.body);
        std::thread::sleep(Duration::from_millis(100));
    }
    stop.store(true, Ordering::Relaxed);

    let mut total = 0usize;
    for worker in workers {
        let (statuses, bodies) = worker.join().expect("load worker");
        for (status, body) in statuses.iter().zip(&bodies) {
            total += 1;
            assert_eq!(*status, 200, "zero non-200 under swap: {body}");
            assert!(
                body == &old_expected || body == &new_expected,
                "every body matches exactly one epoch, never a blend"
            );
        }
    }
    assert!(total > 0, "the storm actually issued queries");

    // The pin still answers the old epoch's bytes after both swaps.
    let request = AnalysisRequest::parse(body).expect("request");
    assert_eq!(
        pinned.engine.run(&request).to_json().pretty(),
        old_expected,
        "pinned epoch unaffected by the swaps"
    );

    // Dropping the pin releases the old epoch's memory.
    drop(pinned);
    let deadline = Instant::now() + Duration::from_secs(3);
    while old_weak.upgrade().is_some() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        old_weak.upgrade().is_none(),
        "old epoch freed once the last pin dropped"
    );
    // One trace resident, same data scale as the baseline: the swap
    // did not leak residency.
    assert_eq!(handle.registry().len(), 1);
    let now = handle.registry().resident_bytes();
    assert!(
        now > 0 && now < baseline.saturating_mul(3),
        "resident bytes near baseline after swaps: {now} vs {baseline}"
    );
    handle.shutdown();
}
