//! Overload-protection robustness: slow clients get typed timeouts,
//! a full gate sheds with typed 429/503 + `Retry-After` hints, the
//! retrying client recovers through a shed storm, and shutdown under
//! load drains admitted requests while shedding queued ones — no
//! request is ever silently dropped.

use hpcfail_core::engine::Engine;
use hpcfail_serve::admission::{AdmissionConfig, ShedPolicy, ShedReason};
use hpcfail_serve::chaos::ChaosConfig;
use hpcfail_serve::client::Client;
use hpcfail_serve::registry::TraceRegistry;
use hpcfail_serve::retry::{RetryPolicy, RetryingClient};
use hpcfail_serve::server::{spawn, spawn_with_registry, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn engine() -> Engine {
    Engine::new(hpcfail_synth::FleetSpec::demo().generate(42).into_store())
}

fn temp_log(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hpcfail-serve-robustness");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{tag}-{}.jsonl", std::process::id()))
}

/// A client that stalls mid-request must get exactly one typed 408 and
/// exactly one access-log line; an idle connection that never sends a
/// byte is closed silently with no log line. Either way the server
/// keeps serving.
#[test]
fn slow_loris_gets_one_typed_408_and_one_log_line() {
    let log_path = temp_log("slow-loris");
    std::fs::remove_file(&log_path).ok();
    let handle = spawn(
        engine(),
        ServerConfig {
            workers: 4,
            read_timeout: Duration::from_millis(200),
            access_log: Some(log_path.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    // Idle keep-alive: connect, send nothing, wait out the timeout.
    {
        let mut idle = TcpStream::connect(handle.addr()).expect("connect");
        let mut out = Vec::new();
        let _ = idle.read_to_end(&mut out); // server closes silently
        assert!(out.is_empty(), "idle close must not write a response");
    }

    // Slow loris: half a request line, then stall past the timeout.
    let mut loris = TcpStream::connect(handle.addr()).expect("connect");
    loris
        .write_all(b"POST /query HTTP/1.1\r\ncontent-le")
        .expect("partial write");
    let mut out = String::new();
    loris.read_to_string(&mut out).expect("read response");
    assert!(
        out.starts_with("HTTP/1.1 408"),
        "stalled request gets a typed 408, got: {out:?}"
    );
    assert_eq!(
        out.matches("HTTP/1.1").count(),
        1,
        "exactly one response on the connection"
    );

    // The server is still healthy for well-formed traffic.
    let client = Client::new(handle.addr().to_string());
    assert_eq!(client.get("/healthz").expect("healthz").status, 200);
    handle.shutdown();

    let log = std::fs::read_to_string(&log_path).expect("access log");
    let loris_lines: Vec<&str> = log
        .lines()
        .filter(|l| l.contains("\"status\":408"))
        .collect();
    assert_eq!(
        loris_lines.len(),
        1,
        "exactly one 408 line (idle close logs nothing): {log}"
    );
    assert!(
        loris_lines[0].contains("\"kind\":\"http-error\""),
        "line: {}",
        loris_lines[0]
    );
    std::fs::remove_file(&log_path).ok();
}

/// With `max_inflight: 1` and the reject policy, a second concurrent
/// query gets a typed 429 with `Retry-After` hints and the shed shows
/// up in the gate's counters and `/healthz`.
#[test]
fn overload_sheds_typed_429_with_retry_hints() {
    // One engine-point stall (600 ms) pins the only inflight slot.
    let chaos = ChaosConfig::parse(
        r#"{
          "seed": 11,
          "rules": [
            {"point": "engine", "fault": "stall", "probability": 1.0, "ms": 600, "max": 1}
          ]
        }"#,
    )
    .expect("chaos spec");
    let handle = spawn(
        engine(),
        ServerConfig {
            workers: 4,
            admission: AdmissionConfig {
                max_inflight: 1,
                max_queued: 4,
                policy: ShedPolicy::Reject,
                retry_after_ms: 25,
            },
            chaos: Some(chaos),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = handle.addr().to_string();

    let stalled = std::thread::spawn({
        let addr = addr.clone();
        move || {
            Client::new(addr)
                .post("/query", r#"{"analysis": "trace-summary"}"#, &[])
                .expect("stalled query")
        }
    });
    // Let the stalled query claim the slot, then overload.
    std::thread::sleep(Duration::from_millis(200));
    let shed = Client::new(addr.clone())
        .post("/query", r#"{"analysis": "env-breakdown"}"#, &[])
        .expect("shed round trip");
    assert_eq!(shed.status, 429, "body: {}", shed.body);
    assert_eq!(shed.header("x-shed"), Some("queue_full"));
    assert_eq!(shed.header("x-retry-after-ms"), Some("25"));
    assert_eq!(shed.header("retry-after"), Some("1"));
    assert!(shed.body.contains("\"error\""), "typed body: {}", shed.body);

    // /healthz never passes the gate and reports the shed breakdown.
    let health = Client::new(addr).get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert!(
        health.body.contains("\"queue_full\": 1"),
        "healthz admission breakdown: {}",
        health.body
    );
    assert_eq!(handle.admission().shed_count(ShedReason::QueueFull), 1);
    assert_eq!(handle.admission().shed_total(), 1);

    let ok = stalled.join().expect("stalled thread");
    assert_eq!(ok.status, 200, "the admitted request still answers");
    handle.shutdown();
}

/// A retrying client pointed at a server whose chaos spec sheds the
/// first two admission arrivals recovers on the third attempt, honoring
/// the server's `x-retry-after-ms` hint.
#[test]
fn retrying_client_recovers_through_a_shed_storm() {
    let chaos = ChaosConfig::parse(
        r#"{
          "seed": 5,
          "rules": [
            {"point": "admission", "fault": "shed", "probability": 1.0, "max": 2}
          ]
        }"#,
    )
    .expect("chaos spec");
    let handle = spawn(
        engine(),
        ServerConfig {
            workers: 2,
            admission: AdmissionConfig {
                max_inflight: 8,
                max_queued: 8,
                policy: ShedPolicy::Brownout,
                retry_after_ms: 5,
            },
            chaos: Some(chaos),
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    let client = RetryingClient::new(
        Client::new(handle.addr().to_string()),
        RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 1,
            max_delay_ms: 50,
            ..RetryPolicy::default()
        },
    );
    let outcome = client.post_detailed("/query", r#"{"analysis": "trace-summary"}"#, &[]);
    let response = outcome.result.expect("recovered answer");
    assert_eq!(response.status, 200, "body: {}", response.body);
    assert_eq!(outcome.attempts, 3, "two chaos sheds, then success");
    assert_eq!(outcome.sheds, 2);
    assert!(!outcome.gave_up);
    assert_eq!(client.stats().retries, 2);
    assert_eq!(client.stats().gave_up, 0);
    assert_eq!(handle.admission().shed_count(ShedReason::Chaos), 2);
    handle.shutdown();
}

/// `/shutdown` while a request is mid-flight and others sit in the
/// admission queue: the admitted request finishes with 200, queued ones
/// shed with a typed `503 draining`, and every worker joins.
#[test]
fn shutdown_under_load_drains_admitted_and_sheds_queued() {
    let chaos = ChaosConfig::parse(
        r#"{
          "seed": 3,
          "rules": [
            {"point": "engine", "fault": "stall", "probability": 1.0, "ms": 800, "max": 1}
          ]
        }"#,
    )
    .expect("chaos spec");
    let handle = spawn(
        engine(),
        ServerConfig {
            workers: 6,
            admission: AdmissionConfig {
                max_inflight: 1,
                max_queued: 8,
                policy: ShedPolicy::Brownout,
                retry_after_ms: 10,
            },
            chaos: Some(chaos),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = handle.addr().to_string();

    // One admitted request, stalled at the engine point.
    let admitted = std::thread::spawn({
        let addr = addr.clone();
        move || {
            Client::new(addr)
                .post("/query", r#"{"analysis": "trace-summary"}"#, &[])
                .expect("admitted query")
        }
    });
    std::thread::sleep(Duration::from_millis(200));

    // Two more queries queue behind the held slot.
    let queued: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                Client::new(addr)
                    .post("/query", r#"{"analysis": "env-breakdown"}"#, &[])
                    .expect("queued query")
            })
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(3);
    while handle.admission().queued() < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(handle.admission().queued(), 2, "both waiters queued");

    // Shut down mid-storm via the endpoint.
    let bye = Client::new(addr).post("/shutdown", "", &[]).expect("ack");
    assert_eq!(bye.status, 200);

    for join in queued {
        let response = join.join().expect("queued thread");
        assert_eq!(response.status, 503, "body: {}", response.body);
        assert_eq!(response.header("x-shed"), Some("draining"));
    }
    let ok = admitted.join().expect("admitted thread");
    assert_eq!(ok.status, 200, "admitted request drains to completion");

    assert_eq!(handle.admission().shed_count(ShedReason::Draining), 2);
    let deadline = Instant::now() + Duration::from_secs(3);
    while handle.inflight() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(handle.inflight(), 0, "inflight gauge fully decremented");
    assert_eq!(handle.admission().inflight(), 0, "no permit leaked");
    handle.shutdown(); // joins all workers; must not hang
}

/// Shutdown while an upload is mid-parse: uploads are admitted as
/// `Expensive`-class work *before* the heavy parse, so draining waits
/// for the in-progress upload to land (200, trace registered) while
/// work arriving after the drain began sheds with a typed
/// `503 draining`. No upload is half-registered or silently dropped.
#[test]
fn shutdown_waits_for_in_progress_upload_and_sheds_late_ones() {
    // One engine-point stall pins the upload after it holds its permit.
    let chaos = ChaosConfig::parse(
        r#"{
          "seed": 9,
          "rules": [
            {"point": "engine", "fault": "stall", "probability": 1.0, "ms": 800, "max": 1}
          ]
        }"#,
    )
    .expect("chaos spec");
    let handle = spawn_with_registry(
        TraceRegistry::new(0),
        ServerConfig {
            workers: 6,
            admission: AdmissionConfig {
                max_inflight: 1,
                max_queued: 4,
                policy: ShedPolicy::Brownout,
                retry_after_ms: 10,
            },
            chaos: Some(chaos),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = handle.addr().to_string();

    let snapshot = hpcfail_store::snapshot::snapshot_bytes(
        &hpcfail_synth::FleetSpec::demo().generate(7).into_store(),
    );
    let uploading = std::thread::spawn({
        let addr = addr.clone();
        let snapshot = snapshot.clone();
        move || {
            Client::new(addr)
                .post_bytes("/v1/traces/landing", &snapshot, &[])
                .expect("admitted upload")
        }
    });
    // Let the upload claim the only permit and hit the stall, then
    // queue a second upload behind it.
    std::thread::sleep(Duration::from_millis(200));
    let queued = std::thread::spawn({
        let addr = addr.clone();
        let snapshot = snapshot.clone();
        move || {
            Client::new(addr)
                .post_bytes("/v1/traces/too-late", &snapshot, &[])
                .expect("queued upload round trip")
        }
    });
    let deadline = Instant::now() + Duration::from_secs(3);
    while handle.admission().queued() < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(handle.admission().queued(), 1, "second upload queued");

    let bye = Client::new(addr)
        .post("/v1/shutdown", "", &[])
        .expect("ack");
    assert_eq!(bye.status, 200);

    // The queued upload sheds with a typed 503 instead of landing.
    let late = queued.join().expect("queued thread");
    assert_eq!(late.status, 503, "body: {}", late.body);
    assert_eq!(late.header("x-shed"), Some("draining"));

    // The admitted upload drains to completion and is registered.
    let landed = uploading.join().expect("upload thread");
    assert_eq!(landed.status, 200, "body: {}", landed.body);
    assert!(
        landed.body.contains("\"name\": \"landing\""),
        "{}",
        landed.body
    );
    assert!(handle.registry().contains("landing"), "upload landed");
    assert!(
        !handle.registry().contains("too-late"),
        "shed upload did not register"
    );

    assert_eq!(handle.admission().inflight(), 0, "no permit leaked");
    handle.shutdown(); // joins all workers; must not hang
}
