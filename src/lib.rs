//! `hpcfail` — a toolkit for understanding how HPC systems fail.
//!
//! This facade crate re-exports the whole `hpcfail` workspace behind one
//! dependency. The workspace reproduces El-Sayed and Schroeder,
//! *"Reading between the lines of failure logs: Understanding how HPC
//! systems fail"* (DSN 2013) as a reusable library:
//!
//! - [`types`] — the trace data model (failure taxonomy, records, time).
//! - [`stats`] — the statistics substrate (distributions, tests, GLMs).
//! - [`store`] — the indexed trace store with LANL-format CSV I/O.
//! - [`synth`] — the synthetic LANL-like fleet generator.
//! - [`analysis`] — the paper's analyses (Sections III-X).
//! - [`report`] — plain-text tables, bar charts and TSV export.
//!
//! # Quickstart
//!
//! ```
//! use hpcfail::prelude::*;
//!
//! // Generate a small synthetic fleet (deterministic under the seed).
//! let fleet = FleetSpec::demo().generate(42);
//! let store = fleet.into_store();
//!
//! // How much more likely is a node to fail in the week after a failure?
//! let analysis = CorrelationAnalysis::new(&store);
//! let week = analysis.group_conditional(
//!     SystemGroup::Group1,
//!     FailureClass::Any,
//!     FailureClass::Any,
//!     Window::Week,
//!     Scope::SameNode,
//! );
//! assert!(week.conditional.estimate() > week.baseline.estimate());
//! ```

pub use hpcfail_core as analysis;
pub use hpcfail_report as report;
pub use hpcfail_stats as stats;
pub use hpcfail_store as store;
pub use hpcfail_synth as synth;
pub use hpcfail_types as types;

/// The most frequently used items from every sub-crate.
pub mod prelude {
    pub use hpcfail_core::prelude::*;
    pub use hpcfail_store::prelude::*;
    pub use hpcfail_synth::prelude::*;
    pub use hpcfail_types::prelude::*;
}
