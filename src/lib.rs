//! `hpcfail` — a toolkit for understanding how HPC systems fail.
//!
//! This facade crate re-exports the whole `hpcfail` workspace behind one
//! dependency. The workspace reproduces El-Sayed and Schroeder,
//! *"Reading between the lines of failure logs: Understanding how HPC
//! systems fail"* (DSN 2013) as a reusable library:
//!
//! - [`types`] — the trace data model (failure taxonomy, records, time).
//! - [`stats`] — the statistics substrate (distributions, tests, GLMs).
//! - [`store`] — the indexed trace store with LANL-format CSV I/O.
//! - [`synth`] — the synthetic LANL-like fleet generator.
//! - [`analysis`] — the paper's analyses (Sections III-X) behind the
//!   typed [`Engine`](analysis::engine::Engine) entry point.
//! - [`report`] — plain-text tables, bar charts and TSV export.
//! - [`serve`] — a concurrent query service over the engine.
//!
//! # Quickstart
//!
//! ```
//! use hpcfail::prelude::*;
//!
//! // Generate a small synthetic fleet (deterministic under the seed)
//! // and wrap it in the analysis engine.
//! let engine = Engine::new(FleetSpec::demo().generate(42).into_store());
//!
//! // How much more likely is a node to fail in the week after a failure?
//! let week = engine.correlation().group_conditional(
//!     SystemGroup::Group1,
//!     FailureClass::Any,
//!     FailureClass::Any,
//!     Window::Week,
//!     Scope::SameNode,
//! );
//! assert!(week.conditional.estimate() > week.baseline.estimate());
//!
//! // The same question as a serializable request — what the `hpcfail-serve`
//! // server, the repro harness, and the CLI all speak.
//! let request = AnalysisRequest::Conditional {
//!     group: SystemGroup::Group1,
//!     trigger: FailureClass::Any,
//!     target: FailureClass::Any,
//!     window: Window::Week,
//!     scope: Scope::SameNode,
//! };
//! let round_tripped = AnalysisRequest::parse(&request.canonical()).unwrap();
//! let result = engine.run(&round_tripped);
//! assert!(result.to_json().pretty().contains("conditional"));
//! ```

pub use hpcfail_core as analysis;
pub use hpcfail_report as report;
pub use hpcfail_serve as serve;
pub use hpcfail_stats as stats;
pub use hpcfail_store as store;
pub use hpcfail_synth as synth;
pub use hpcfail_types as types;

/// The most frequently used items from every sub-crate.
pub mod prelude {
    pub use hpcfail_core::prelude::*;
    pub use hpcfail_store::prelude::*;
    pub use hpcfail_synth::prelude::*;
    pub use hpcfail_types::prelude::*;
}
