//! Checkpoint advisor: turn the paper's correlation findings into a
//! proactive checkpointing policy.
//!
//! The paper motivates its correlation analysis with checkpoint
//! scheduling: if failures cluster after failures, a scheduler should
//! checkpoint more aggressively on recently-failed nodes. This example
//! evaluates a family of alarm rules and recommends the one with the
//! best catch-rate per unit of flagged node-time.
//!
//! ```text
//! cargo run --example checkpoint_advisor --release
//! ```

use hpcfail::analysis::predict::AlarmRule;
use hpcfail::prelude::*;
use hpcfail::report::fmt::pct;
use hpcfail::report::table::Table;

fn main() {
    println!("generating demo fleet...");
    let engine = Engine::new(FleetSpec::demo().generate(11).into_store());

    let triggers = [
        ("any failure", FailureClass::Any),
        ("environment", FailureClass::Root(RootCause::Environment)),
        ("network", FailureClass::Root(RootCause::Network)),
        ("hardware", FailureClass::Root(RootCause::Hardware)),
        ("software", FailureClass::Root(RootCause::Software)),
    ];

    println!("\nalarm rules evaluated on group-1 systems:");
    let mut table = Table::new(&["rule", "precision", "recall", "flagged time", "efficiency"]);
    let mut best: Option<(String, f64)> = None;
    for (name, trigger) in triggers {
        for window in Window::ALL {
            let rule = AlarmRule { trigger, window };
            let eval = rule.evaluate_group(engine.trace(), SystemGroup::Group1);
            if eval.alarms == 0 {
                continue;
            }
            // Catch-rate per unit of flagged time: how much better than
            // random checkpointing the rule is.
            let efficiency = if eval.flagged_fraction() > 0.0 {
                eval.recall() / eval.flagged_fraction()
            } else {
                0.0
            };
            table.row(&[
                format!("flag {window} after {name}"),
                pct(eval.precision()),
                pct(eval.recall()),
                pct(eval.flagged_fraction()),
                format!("{efficiency:.1}x"),
            ]);
            let candidate = (format!("flag {window} after {name}"), efficiency);
            if best.as_ref().is_none_or(|(_, e)| candidate.1 > *e) {
                best = Some(candidate);
            }
        }
    }
    println!("{}", table.render());
    if let Some((rule, efficiency)) = best {
        println!(
            "recommendation: \"{rule}\" — failures are {efficiency:.0}x more likely\n\
             inside flagged windows than under uniform checkpointing."
        );
    }
}
