//! Power-quality audit: the workflow an operations team would run after
//! a summer of flaky facility power (the paper's Section VII applied as
//! a tool).
//!
//! For each power-problem type it reports how much hardware, storage
//! software and maintenance load to expect in the following month, and
//! which components to inspect first.
//!
//! ```text
//! cargo run --example power_quality_audit --release
//! ```

use hpcfail::analysis::power::PowerProblem;
use hpcfail::prelude::*;
use hpcfail::report::fmt::{factor, pct};
use hpcfail::report::table::Table;

fn main() {
    println!("generating demo fleet...");
    let engine = Engine::new(FleetSpec::demo().generate(7).into_store());
    let analysis = engine.power();

    // What kinds of environmental problems does the machine room see?
    println!("\nenvironmental failure mix:");
    let mut mix = Table::new(&["problem", "count", "share"]);
    let counts = analysis.env_breakdown();
    for (cause, share) in analysis.env_shares() {
        mix.row(&[
            cause.label().to_owned(),
            counts[&cause].to_string(),
            pct(share),
        ]);
    }
    println!("{}", mix.render());

    // Risk outlook per power problem.
    println!("expected fallout in the month after each power problem:");
    let mut outlook = Table::new(&[
        "power problem",
        "hardware failures",
        "software failures",
        "unsched. maintenance",
    ]);
    for problem in PowerProblem::ALL {
        let hw = analysis.conditional_after(
            problem,
            FailureClass::Root(RootCause::Hardware),
            Window::Month,
        );
        let sw = analysis.conditional_after(
            problem,
            FailureClass::Root(RootCause::Software),
            Window::Month,
        );
        let maint = analysis.maintenance_after(problem);
        let cell = |e: &ConditionalEstimate| {
            format!("{} ({})", pct(e.conditional.estimate()), factor(e.factor()))
        };
        outlook.row(&[
            problem.label().to_owned(),
            cell(&hw),
            cell(&sw),
            cell(&maint),
        ]);
    }
    println!("{}", outlook.render());

    // Inspection checklist: components ranked by factor increase after
    // any power problem.
    println!("inspection priorities (per-component factor in the month after events):");
    let mut rows: Vec<(String, f64)> = Vec::new();
    for (problem, component, e) in analysis.figure10_right() {
        if let Some(f) = e.factor() {
            rows.push((
                format!("{} after {}", component.label(), problem.label()),
                f,
            ));
        }
    }
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("factors are finite"));
    for (label, f) in rows.iter().take(8) {
        println!("  {label:<38} {f:.1}x");
    }
    println!(
        "\n(the paper's advice: after power events inspect memory DIMMs and node\n\
         boards; replace suspect power supplies quickly — they cascade.)"
    );
}
