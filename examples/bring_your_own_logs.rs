//! Bring your own logs: the CSV ingest path for running the analyses on
//! real failure data instead of the synthetic fleet.
//!
//! This example round-trips a trace through the on-disk CSV schema —
//! the same schema you would export your site's failure/job/temperature
//! logs into — and verifies the analyses see identical data.
//!
//! ```text
//! cargo run --example bring_your_own_logs --release
//! ```

use hpcfail::prelude::*;
use hpcfail::store::csv::{load_trace, save_trace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("generating demo fleet (stand-in for your real logs)...");
    let store = FleetSpec::demo().generate(3).into_store();

    // Export to the documented CSV schema.
    let dir = std::env::temp_dir().join("hpcfail-example-trace");
    save_trace(&dir, &store)?;
    println!("wrote CSV files to {}", dir.display());
    for entry in std::fs::read_dir(&dir)? {
        let entry = entry?;
        println!(
            "  {} ({} bytes)",
            entry.file_name().to_string_lossy(),
            entry.metadata()?.len()
        );
    }

    // A downstream user starts here: load the directory and analyze.
    let loaded = load_trace(&dir)?;
    println!(
        "\nloaded {} systems, {} failures, {} neutron samples",
        loaded.len(),
        loaded.total_failures(),
        loaded.neutron_samples().len()
    );

    // The loaded trace carries exactly the same records.
    assert_eq!(loaded.total_failures(), store.total_failures());
    for system in store.systems() {
        let reloaded = loaded.system(system.id()).expect("system preserved");
        assert_eq!(reloaded.failures(), system.failures());
        assert_eq!(reloaded.jobs().len(), system.jobs().len());
    }

    // ... and identical analysis results: the engine fingerprints each
    // trace, and identical data means identical fingerprints and
    // byte-identical answers for any request.
    let original = Engine::new(store);
    let reloaded = Engine::new(loaded);
    assert_eq!(original.fingerprint(), reloaded.fingerprint());
    let request = AnalysisRequest::Conditional {
        group: SystemGroup::Group1,
        trigger: FailureClass::Any,
        target: FailureClass::Any,
        window: Window::Week,
        scope: Scope::SameNode,
    };
    let before = original.run(&request).to_json().pretty();
    assert_eq!(before, reloaded.run(&request).to_json().pretty());
    let after = reloaded.correlation().group_conditional(
        SystemGroup::Group1,
        FailureClass::Any,
        FailureClass::Any,
        Window::Week,
        Scope::SameNode,
    );
    println!(
        "\nweekly post-failure probability survives the round-trip: {:.2}% (factor {})",
        after.conditional.estimate() * 100.0,
        after
            .factor()
            .map_or("NA".to_owned(), |f| format!("{f:.1}x")),
    );

    std::fs::remove_dir_all(&dir)?;
    println!("cleaned up {}", dir.display());
    Ok(())
}
