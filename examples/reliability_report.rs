//! Site reliability report: the one-page summary a reliability engineer
//! would hand to management, combining the paper's analyses with the
//! toolkit's availability and inter-arrival extensions.
//!
//! ```text
//! cargo run --example reliability_report --release
//! ```

use hpcfail::prelude::*;
use hpcfail::report::fmt::{factor, pct};
use hpcfail::report::table::Table;

fn main() {
    println!("generating demo fleet...");
    let engine = Engine::new(FleetSpec::demo().generate(17).into_store());

    // 1. The headline availability numbers.
    println!("\n== availability ==");
    let availability = engine.availability();
    let mut t = Table::new(&[
        "system",
        "node MTBF (h)",
        "MTTR (h)",
        "availability",
        "worst cause",
    ]);
    for r in availability.all_reports() {
        t.row(&[
            format!("system {}", r.system.raw()),
            format!("{:.0}", r.node_mtbf_hours),
            format!("{:.1}", r.mttr_hours),
            format!("{:.3}%", r.availability * 100.0),
            r.costliest_root_cause()
                .map_or("-".into(), |c| c.label().to_owned()),
        ]);
    }
    println!("{}", t.render());

    // 2. Does the failure process cluster? (It does — plan checkpoints
    //    accordingly.)
    println!("== failure process character ==");
    let arrivals = engine.arrivals();
    for system in engine.trace().systems() {
        match arrivals.profile(system.id(), FailureClass::Any) {
            Ok(p) => println!(
                "  {}: MTBF {:.0}h, best fit {}, clustering {}",
                system.config().name,
                p.mtbf_hours,
                p.best_fit().dist,
                if p.clustering_detected() { "YES" } else { "no" },
            ),
            Err(e) => println!("  {}: {e}", system.config().name),
        }
    }

    // 3. Top risk factors, from the conditional analyses.
    println!("\n== top follow-up risks (week after trigger, group 1) ==");
    let correlation = engine.correlation();
    let mut risks: Vec<(String, f64, f64)> = FailureClass::FIGURE1
        .iter()
        .map(|&class| {
            let e = correlation.group_conditional(
                SystemGroup::Group1,
                class,
                FailureClass::Any,
                Window::Week,
                Scope::SameNode,
            );
            (
                class.label().to_owned(),
                e.conditional.estimate(),
                e.factor().unwrap_or(0.0),
            )
        })
        .collect();
    risks.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("factors are finite"));
    for (label, p, f) in risks.iter().take(5) {
        println!(
            "  after a {label} failure: {} chance of another failure ({})",
            pct(*p),
            factor(Some(*f))
        );
    }

    // 4. The watch list: most failure-prone nodes.
    println!("\n== watch list ==");
    let nodes = engine.nodes();
    for system in engine.trace().systems() {
        let id = system.id();
        if let Some(worst) = nodes.most_failure_prone(id) {
            let counts = nodes.failure_counts(id);
            let avg = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
            let count = counts[worst.index()];
            if count as f64 > 3.0 * avg {
                println!(
                    "  {}: {worst} has {count} failures ({:.0}x the average) — inspect",
                    system.config().name,
                    count as f64 / avg.max(1e-9),
                );
            }
        }
    }
}
