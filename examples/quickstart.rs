//! Quickstart: generate a small synthetic fleet and ask the paper's
//! first question — how much more likely is a node to fail right after
//! it failed?
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use hpcfail::prelude::*;
use hpcfail::report::figures::render_conditional_table;

fn main() {
    // A small two-year fleet: two SMP systems and one NUMA system.
    // Generation is deterministic for a given seed. The engine is the
    // single entry point to every analysis.
    println!("generating demo fleet...");
    let engine = Engine::new(FleetSpec::demo().generate(42).into_store());
    println!(
        "{} systems, {} failures total\n",
        engine.trace().len(),
        engine.trace().total_failures()
    );

    let analysis = engine.correlation();

    // Section III-A.1: the conditional-vs-random comparison.
    for group in SystemGroup::ALL {
        println!("{}", group.label());
        for window in [Window::Day, Window::Week] {
            let e = analysis.group_conditional(
                group,
                FailureClass::Any,
                FailureClass::Any,
                window,
                Scope::SameNode,
            );
            println!(
                "  P(failure in the {window} after a failure) = {:.2}% \
                 vs {:.2}% in a random {window}  ({})",
                e.conditional.estimate() * 100.0,
                e.baseline.estimate() * 100.0,
                e.factor().map_or("NA".to_owned(), |f| format!("{f:.1}x")),
            );
        }
    }

    // Figure 1(a): which failure types are the strongest triggers?
    println!("\nP(any follow-up within a week | failure of type X), group 1:");
    let bars: Vec<(&str, ConditionalEstimate)> = FailureClass::FIGURE1
        .iter()
        .map(|&class| {
            (
                class.label(),
                analysis.group_conditional(
                    SystemGroup::Group1,
                    class,
                    FailureClass::Any,
                    Window::Week,
                    Scope::SameNode,
                ),
            )
        })
        .collect();
    println!("{}", render_conditional_table(&bars));

    // The same question as a typed, serializable request — exactly what
    // the `hpcfail-serve` server answers over HTTP.
    let request = AnalysisRequest::Conditional {
        group: SystemGroup::Group1,
        trigger: FailureClass::Any,
        target: FailureClass::Any,
        window: Window::Week,
        scope: Scope::SameNode,
    };
    println!("as a request:\n{}", request.canonical());
    println!("as a result:\n{}", engine.run(&request).to_json().pretty());
}
