//! The reproduction harness end-to-end: every registered experiment
//! runs against a small fleet and produces a plausible report.

use hpcfail_bench::{experiment, ReproContext, EXPERIMENTS};
use std::sync::OnceLock;

fn ctx() -> &'static ReproContext {
    static CTX: OnceLock<ReproContext> = OnceLock::new();
    CTX.get_or_init(|| ReproContext::generate(0.15, 7))
}

#[test]
fn every_experiment_produces_output() {
    for e in EXPERIMENTS {
        let report = (e.run)(ctx());
        assert!(
            report.len() > 40,
            "experiment {} produced only {:?}",
            e.id,
            report
        );
        // No placeholder markers or debug formatting leaks.
        assert!(!report.contains("TODO"), "{} contains TODO", e.id);
    }
}

#[test]
fn experiments_cover_every_paper_artifact() {
    let required = [
        "sec3a", "fig1a", "fig1b", "fig2a", "fig2b", "fig3", "fig4", "fig5", "fig6", "fig7",
        "fig8", "fig9", "fig10", "fig11", "sec7a2", "fig12", "fig13", "sec8a", "fig14", "tab1",
        "tab2", "tab3",
    ];
    for id in required {
        assert!(experiment(id).is_some(), "missing experiment {id}");
    }
}

#[test]
fn figure_reports_carry_expected_sections() {
    let checks: [(&str, &[&str]); 6] = [
        ("fig1a", &["LANL Group-1", "LANL Group-2", "ENV", "CPU"]),
        ("fig9", &["PowerOutage", "UPS", "Chillers"]),
        ("fig10", &["Fig 10 (left)", "Fig 10 (right)", "Memory"]),
        ("fig12", &["PowerSupplyFail", "node id"]),
        ("tab2", &["(Intercept)", "num_jobs", "Pr(>|z|)"]),
        ("fig14", &["DRAM failures", "CPU failures", "Pearson"]),
    ];
    for (id, needles) in checks {
        let report = (experiment(id).unwrap().run)(ctx());
        for needle in needles {
            assert!(
                report.contains(needle),
                "{id} missing {needle:?}:\n{report}"
            );
        }
    }
}

#[test]
fn context_is_deterministic() {
    let a = ReproContext::generate(0.1, 99);
    let b = ReproContext::generate(0.1, 99);
    assert_eq!(a.trace().total_failures(), b.trace().total_failures());
    let report_a = (experiment("sec3a").unwrap().run)(&a);
    let report_b = (experiment("sec3a").unwrap().run)(&b);
    assert_eq!(report_a, report_b);
}
