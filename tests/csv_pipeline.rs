//! Full CSV pipeline: a generated fleet survives the on-disk round-trip
//! with identical records and identical analysis results.

use hpcfail::prelude::*;
use hpcfail::store::csv::{load_trace, save_trace};

#[test]
fn full_fleet_roundtrip_preserves_analyses() {
    let store = FleetSpec::demo().generate(21).into_store();
    let dir = std::env::temp_dir().join(format!("hpcfail-it-{}", std::process::id()));
    save_trace(&dir, &store).expect("save");
    let loaded = load_trace(&dir).expect("load");
    std::fs::remove_dir_all(&dir).expect("cleanup");

    // Records identical.
    assert_eq!(loaded.len(), store.len());
    assert_eq!(loaded.total_failures(), store.total_failures());
    for system in store.systems() {
        let other = loaded.system(system.id()).expect("system exists");
        assert_eq!(other.failures(), system.failures());
        assert_eq!(other.jobs(), system.jobs());
        assert_eq!(other.maintenance(), system.maintenance());
        assert_eq!(other.temperatures().len(), system.temperatures().len());
        assert_eq!(
            other.layout().map(|l| l.len()),
            system.layout().map(|l| l.len())
        );
    }
    assert_eq!(loaded.neutron_samples(), store.neutron_samples());

    // Analyses identical.
    let before = Engine::new(store);
    let after = Engine::new(loaded);
    for group in SystemGroup::ALL {
        for scope in [Scope::SameNode, Scope::SameRack] {
            let a = before.correlation().group_conditional(
                group,
                FailureClass::Root(RootCause::Hardware),
                FailureClass::Any,
                Window::Week,
                scope,
            );
            let b = after.correlation().group_conditional(
                group,
                FailureClass::Root(RootCause::Hardware),
                FailureClass::Any,
                Window::Week,
                scope,
            );
            assert_eq!(a.conditional, b.conditional);
            assert_eq!(a.baseline, b.baseline);
        }
    }
    let env_a = before.power().env_breakdown();
    let env_b = after.power().env_breakdown();
    assert_eq!(env_a, env_b);
    assert_eq!(before.fingerprint(), after.fingerprint());
}

#[test]
fn loading_missing_directory_fails_cleanly() {
    let missing = std::env::temp_dir().join("hpcfail-does-not-exist-xyz");
    let err = load_trace(&missing).expect_err("must fail");
    // It's an I/O error with a readable message, not a panic.
    assert!(err.to_string().contains("i/o error"), "{err}");
}
