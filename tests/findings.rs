//! End-to-end assertions of the paper's qualitative findings: generate
//! a fleet, run every analysis, and check that each section's headline
//! observation re-emerges from the data.

use hpcfail::analysis::correlation::Scope;
use hpcfail::analysis::power::PowerProblem;
use hpcfail::analysis::regression_study::{RegressionStudy, StudyFamily};
use hpcfail::analysis::temperature::TempPredictor;
use hpcfail::prelude::*;
use hpcfail::stats::glm::Family;
use std::sync::OnceLock;

/// One moderately sized fleet shared by all assertions (a scaled LANL
/// fleet: big enough for stable statistics, small enough for CI).
///
/// The seed pins one concrete realization; it was re-picked when the
/// workspace switched to the vendored `rand` (different streams than
/// upstream) so every statistical assertion holds with margin.
fn fleet() -> &'static Engine {
    static FLEET: OnceLock<Engine> = OnceLock::new();
    FLEET.get_or_init(|| Engine::new(FleetSpec::lanl_scaled(0.5).generate(46).into_store()))
}

#[test]
fn failures_cluster_after_failures() {
    // Section III-A.1: markedly higher failure probability after a
    // failure, in both groups, at day and week granularity.
    let analysis = fleet().correlation();
    for group in SystemGroup::ALL {
        for window in [Window::Day, Window::Week] {
            let e = analysis.group_conditional(
                group,
                FailureClass::Any,
                FailureClass::Any,
                window,
                Scope::SameNode,
            );
            let f = e.factor().expect("baseline positive");
            assert!(f > 2.0, "{group:?} {window}: factor {f}");
            assert!(e.significant_at(0.01));
        }
    }
}

#[test]
fn group1_baselines_near_paper() {
    // Paper: 0.31% daily / 2.04% weekly for group 1 — check the order
    // of magnitude survives scaling.
    let analysis = fleet().correlation();
    let day = analysis.group_conditional(
        SystemGroup::Group1,
        FailureClass::Any,
        FailureClass::Any,
        Window::Day,
        Scope::SameNode,
    );
    let b = day.baseline.estimate();
    assert!(b > 0.001 && b < 0.02, "daily baseline {b}");
}

#[test]
fn environment_and_network_are_strong_triggers() {
    // Figure 1(a): env/net among the strongest follow-up triggers;
    // human error the weakest.
    let analysis = fleet().correlation();
    let factor = |class| {
        analysis
            .group_conditional(
                SystemGroup::Group1,
                class,
                FailureClass::Any,
                Window::Week,
                Scope::SameNode,
            )
            .factor()
            .unwrap_or(0.0)
    };
    let env = factor(FailureClass::Root(RootCause::Environment));
    let net = factor(FailureClass::Root(RootCause::Network));
    let human = factor(FailureClass::Root(RootCause::HumanError));
    assert!(env > 5.0, "env factor {env}");
    assert!(net > 5.0, "net factor {net}");
    assert!(
        human < env && human < net,
        "human {human} vs env {env}, net {net}"
    );
}

#[test]
fn same_type_predicts_best() {
    // Figure 1(b): conditioning on the same type beats conditioning on
    // any type, for every root cause with enough data.
    let analysis = fleet().pairwise();
    let rows = analysis.same_type_summaries(SystemGroup::Group1, Window::Week, Scope::SameNode);
    let mut checked = 0;
    for row in rows {
        // Undetermined is operator label noise (a random subset of all
        // failures), so "same type" carries no extra signal for it.
        // Rare classes (human error at small scale) are all noise.
        if row.class == FailureClass::Root(RootCause::Undetermined)
            || row.after_same_type.conditional.trials() < 300
        {
            continue;
        }
        assert!(
            row.after_same_type.conditional.estimate() >= row.after_any.conditional.estimate(),
            "{}: same-type {} < any {}",
            row.class.label(),
            row.after_same_type.conditional.estimate(),
            row.after_any.conditional.estimate(),
        );
        checked += 1;
    }
    assert!(checked >= 4, "only {checked} classes had data");
}

#[test]
fn memory_failures_repeat() {
    // Section III-A.4: strong same-type correlation for memory —
    // evidence for hard errors.
    let analysis = fleet().correlation();
    let mem = FailureClass::Hw(HardwareComponent::MemoryDimm);
    let e =
        analysis.group_conditional(SystemGroup::Group1, mem, mem, Window::Week, Scope::SameNode);
    let f = e.factor().expect("baseline positive");
    assert!(f > 10.0, "memory self-factor {f}");
    assert!(e.significant_at(0.01));
}

#[test]
fn rack_correlation_weaker_than_node_stronger_than_system() {
    // Sections III-B/C: same-node >> same-rack > same-system.
    let analysis = fleet().correlation();
    let factor = |scope| {
        analysis
            .group_conditional(
                SystemGroup::Group1,
                FailureClass::Any,
                FailureClass::Any,
                Window::Day,
                scope,
            )
            .factor()
            .unwrap_or(0.0)
    };
    let node = factor(Scope::SameNode);
    let rack = factor(Scope::SameRack);
    let system = factor(Scope::SameSystem);
    assert!(node > rack, "node {node} <= rack {rack}");
    assert!(rack > system, "rack {rack} <= system {system}");
    assert!(rack > 1.2, "rack factor {rack}");
}

#[test]
fn node0_dominates_failure_counts() {
    // Section IV: node 0 fails far more than the rest; equal-rates
    // hypothesis rejected even without it.
    let analysis = fleet().nodes();
    for id in [18u16, 19, 20] {
        let system = SystemId::new(id);
        let counts = analysis.failure_counts(system);
        let avg: f64 = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
        assert!(
            counts[0] as f64 > 4.0 * avg,
            "system {id}: node0 {} vs avg {avg}",
            counts[0]
        );
        let all = analysis
            .equal_rates_test(system, FailureClass::Any, &[])
            .unwrap();
        assert!(all.significant_at(0.01));
        let rest = analysis
            .equal_rates_test(system, FailureClass::Any, &[NodeId::new(0)])
            .unwrap();
        assert!(
            rest.significant_at(0.01),
            "system {id}: frailty heterogeneity persists"
        );
    }
}

#[test]
fn node0_shifts_toward_env_net_sw() {
    // Figures 5/6: node 0's increase is strongest for environment,
    // network and software failures; hardware modest in comparison.
    let analysis = fleet().nodes();
    let system = SystemId::new(18);
    let factor = |class| {
        analysis
            .node_vs_rest(system, NodeId::new(0), class, Window::Month)
            .factor()
            .unwrap_or(0.0)
    };
    let env = factor(FailureClass::Root(RootCause::Environment));
    let net = factor(FailureClass::Root(RootCause::Network));
    let sw = factor(FailureClass::Root(RootCause::Software));
    let hw = factor(FailureClass::Root(RootCause::Hardware));
    assert!(env > hw, "env {env} <= hw {hw}");
    assert!(net > hw, "net {net} <= hw {hw}");
    assert!(sw > hw, "sw {sw} <= hw {hw}");
    assert!(env > 20.0, "env factor {env}");
}

#[test]
fn usage_correlation_carried_by_node0() {
    // Section V: positive job/failure correlation, collapsing when
    // node 0 is removed.
    let analysis = fleet().usage();
    for id in [8u16, 20] {
        let r = analysis.jobs_failures_pearson(SystemId::new(id));
        let all = r.all_nodes.expect("jobs data present");
        let rest = r.without_node0.expect("jobs data present");
        assert!(all > 0.05, "system {id}: r {all}");
        assert!(rest < all, "system {id}: rest {rest} >= all {all}");
    }
}

#[test]
fn heavy_users_fail_at_different_rates() {
    // Section VI: saturated per-user model beats the common rate.
    let analysis = fleet().users();
    for id in [8u16, 20] {
        let top = analysis.heaviest_users(SystemId::new(id), 50);
        assert_eq!(top.len(), 50, "system {id} has 50 heavy users");
        let t = analysis.heterogeneity_test(&top).expect("enough users");
        assert!(t.significant_at(0.1), "system {id}: p = {}", t.p_value);
    }
}

#[test]
fn power_problems_dominate_env_failures() {
    // Figure 9: power-related sub-causes are the majority of
    // environmental failures.
    let analysis = fleet().power();
    let shares = analysis.env_shares();
    let power: f64 = shares
        .iter()
        .filter(|(c, _)| c.is_power_related())
        .map(|(_, s)| s)
        .sum();
    assert!(power > 0.45, "power-related share {power}");
}

#[test]
fn power_problems_raise_hardware_and_software_failures() {
    // Figures 10/11 (left): significant increases for every power
    // problem at the month window.
    let analysis = fleet().power();
    for problem in PowerProblem::ALL {
        for target in [
            FailureClass::Root(RootCause::Hardware),
            FailureClass::Root(RootCause::Software),
        ] {
            let e = analysis.conditional_after(problem, target, Window::Month);
            if e.conditional.trials() < 30 {
                continue;
            }
            let f = e.factor().expect("baseline positive");
            assert!(f > 1.3, "{problem:?} -> {target:?}: factor {f}");
        }
    }
}

#[test]
fn cpus_least_affected_by_power() {
    // Figure 10 (right): CPUs show the smallest increase of all
    // components after power problems.
    let analysis = fleet().power();
    let rows = analysis.figure10_right();
    let avg_factor = |component: HardwareComponent| {
        let fs: Vec<f64> = rows
            .iter()
            .filter(|(_, c, e)| *c == component && e.conditional.trials() >= 20)
            .filter_map(|(_, _, e)| e.factor())
            .collect();
        fs.iter().sum::<f64>() / fs.len().max(1) as f64
    };
    let cpu = avg_factor(HardwareComponent::Cpu);
    let others = [
        HardwareComponent::MemoryDimm,
        HardwareComponent::NodeBoard,
        HardwareComponent::PowerSupply,
    ];
    let mean_others = others.iter().map(|&c| avg_factor(c)).sum::<f64>() / others.len() as f64;
    assert!(
        cpu < mean_others,
        "CPU {cpu} >= mean of others {mean_others}"
    );
    assert!(cpu < 3.5, "CPU factor {cpu} too large");
}

#[test]
fn storage_software_fails_after_power_problems() {
    // Figure 11 (right): DST dominates software failures after outages.
    let analysis = fleet().power();
    let dst = analysis.conditional_after(
        PowerProblem::Outage,
        FailureClass::Sw(SoftwareCause::Dst),
        Window::Month,
    );
    let os = analysis.conditional_after(
        PowerProblem::Outage,
        FailureClass::Sw(SoftwareCause::Os),
        Window::Month,
    );
    assert!(
        dst.conditional.estimate() > os.conditional.estimate(),
        "DST {} <= OS {}",
        dst.conditional.estimate(),
        os.conditional.estimate()
    );
}

#[test]
fn power_problems_trigger_unscheduled_maintenance() {
    // Section VII-A.2: maintenance probability rises by a large factor.
    let analysis = fleet().power();
    let outage = analysis.maintenance_after(PowerProblem::Outage);
    let f = outage.factor().expect("baseline positive");
    assert!(f > 5.0, "outage maintenance factor {f}");
    assert!(outage.significant_at(0.01));
}

#[test]
fn fan_failures_precede_hardware_failures() {
    // Figure 13: fan failures strongly elevate subsequent hardware
    // failures; MSC boards and midplanes respond only to fans.
    let analysis = fleet().temperature();
    let rows = analysis.figure13_left();
    let fan_day = rows
        .iter()
        .find(|(t, w, _)| {
            matches!(t, hpcfail::analysis::temperature::TempTrigger::Fan) && *w == Window::Day
        })
        .expect("fan day row")
        .2;
    let f = fan_day.factor().expect("baseline positive");
    assert!(f > 4.0, "fan day factor {f}");
}

#[test]
fn average_temperature_not_predictive() {
    // Section VIII-A: under the overdispersion-robust NB model, the
    // temperature aggregates do not predict hardware outages.
    let analysis = fleet().temperature();
    let fit = analysis
        .regression(
            SystemId::new(20),
            TempPredictor::Average,
            FailureClass::Root(RootCause::Hardware),
            Family::NegativeBinomial { theta: 1.0 },
        )
        .expect("system 20 has temperature data");
    let c = fit.coefficient("avg_temp").expect("predictor kept");
    assert!(!c.significant_at(0.01), "avg_temp p = {}", c.p_value);
}

#[test]
fn cpu_tracks_neutron_flux_dram_does_not() {
    // Figure 14: CPU failures positively correlated with monthly
    // neutron flux; DRAM flat (hard errors dominate).
    // At reduced scale each system spans only part of a solar cycle,
    // so judge the *mean* correlation across systems, as the paper's
    // per-system panels do qualitatively.
    let analysis = fleet().cosmic();
    let mut cpu_sum = 0.0;
    let mut dram_sum = 0.0;
    let mut systems = 0;
    for id in [2u16, 18, 19, 20] {
        let system = SystemId::new(id);
        let (Some(cpu), Some(dram)) = (
            analysis.flux_correlation(system, FailureClass::Hw(HardwareComponent::Cpu)),
            analysis.flux_correlation(system, FailureClass::Hw(HardwareComponent::MemoryDimm)),
        ) else {
            continue;
        };
        systems += 1;
        cpu_sum += cpu;
        dram_sum += dram;
    }
    assert!(systems >= 3, "cosmic series available");
    let cpu_avg = cpu_sum / systems as f64;
    let dram_avg = dram_sum / systems as f64;
    assert!(cpu_avg > 0.03, "CPU mean correlation {cpu_avg}");
    assert!(cpu_avg > dram_avg, "CPU {cpu_avg} vs DRAM {dram_avg}");
    assert!(dram_avg.abs() < 0.25, "DRAM mean correlation {dram_avg}");
}

#[test]
fn joint_regression_finds_usage_most_significant() {
    // Section X / Tables II-III: usage variables carry the signal.
    let study = fleet().regression();
    let pois = study
        .fit(SystemId::new(20), StudyFamily::Poisson, false)
        .expect("fits");
    let sig = RegressionStudy::significant_predictors(&pois, 0.01);
    assert!(
        sig.contains(&"num_jobs") || sig.contains(&"util"),
        "poisson significant: {sig:?}"
    );
    let nb = study
        .fit(SystemId::new(20), StudyFamily::NegativeBinomial, false)
        .expect("fits");
    let nb_sig = RegressionStudy::significant_predictors(&nb, 0.05);
    // Temperature and position never beat usage.
    assert!(!nb_sig.contains(&"avg_temp"), "nb significant: {nb_sig:?}");
    assert!(!nb_sig.contains(&"PIR"), "nb significant: {nb_sig:?}");
}
