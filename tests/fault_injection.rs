//! The fault-injection suite: for every mutation kind and many seeds,
//! lenient ingestion must never panic, must quarantine exactly the
//! injected lines, and the surviving records must match the clean data
//! minus those lines.

use hpcfail_store::csv::{headers, read_failures, save_trace};
use hpcfail_store::ingest::{
    load_trace_with, read_failures_with, read_jobs_with, read_temperatures_with, IngestPolicy,
};
use hpcfail_synth::corrupt::{
    corrupt_csv, corrupt_file, CorruptionReport, MutationKind, TargetCsv,
};
use hpcfail_synth::FleetSpec;
use std::path::PathBuf;
use std::sync::OnceLock;

const SEEDS: std::ops::Range<u64> = 0..10;

/// The clean demo trace's CSV bytes, generated once per test binary.
fn clean_dir() -> &'static PathBuf {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("hpcfail-fi-clean-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let trace = FleetSpec::demo().generate(42).into_store();
        save_trace(&dir, &trace).expect("save demo trace");
        dir
    })
}

fn clean_bytes(file: &str) -> Vec<u8> {
    std::fs::read(clean_dir().join(file)).expect("read clean csv")
}

/// Removes the given 1-based lines from a byte buffer, preserving the
/// remaining lines verbatim.
fn strip_lines(bytes: &[u8], damaged: &[usize]) -> Vec<u8> {
    let trailing = bytes.last() == Some(&b'\n');
    let mut lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
    if trailing {
        lines.pop();
    }
    let kept: Vec<&[u8]> = lines
        .iter()
        .enumerate()
        .filter(|(i, _)| !damaged.contains(&(i + 1)))
        .map(|(_, l)| *l)
        .collect();
    let mut out = kept.join(&b'\n');
    if trailing && !out.is_empty() {
        out.push(b'\n');
    }
    out
}

#[test]
fn every_kind_and_seed_quarantines_exactly_the_injected_lines() {
    let clean = clean_bytes("failures.csv");
    let clean_records = read_failures(&clean[..]).expect("clean parses strict");
    for kind in MutationKind::ALL {
        for seed in SEEDS {
            let (bytes, report) = corrupt_csv(&clean, TargetCsv::Failures, kind, seed);
            assert!(report.changed, "{kind} seed {seed}: no opportunity");
            let read = read_failures_with(&bytes[..], "failures.csv", IngestPolicy::Lenient)
                .unwrap_or_else(|e| panic!("{kind} seed {seed}: lenient errored: {e}"));
            let quarantined: Vec<usize> = read.quarantined.iter().map(|q| q.line).collect();
            assert_eq!(
                quarantined, report.damaged_lines,
                "{kind} seed {seed}: quarantine must match the injected damage exactly"
            );
            match kind {
                MutationKind::TornFinalLine
                | MutationKind::SwapFields
                | MutationKind::GarbageUtf8
                | MutationKind::ForeignHeader => {
                    // Survivors = the clean data minus the damaged lines.
                    let expected = read_failures(&strip_lines(&clean, &report.damaged_lines)[..])
                        .expect("clean-minus-damaged parses strict");
                    assert_eq!(
                        read.records, expected,
                        "{kind} seed {seed}: survivors must match clean minus damaged"
                    );
                }
                MutationKind::DuplicateRecord => {
                    assert_eq!(
                        read.records, clean_records,
                        "{kind} seed {seed}: the duplicate must be dropped"
                    );
                    assert!(read.duplicates >= 1, "{kind} seed {seed}");
                }
                MutationKind::ShuffleTimestamps => {
                    // Every line still parses; only the order is wrong.
                    assert_eq!(
                        read.records.len(),
                        clean_records.len(),
                        "{kind} seed {seed}"
                    );
                    let strict = read_failures(&bytes[..]).expect("shuffled still parses strict");
                    assert_eq!(read.records, strict, "{kind} seed {seed}");
                }
            }
        }
    }
}

#[test]
fn strict_policy_rejects_every_damaging_kind() {
    let clean = clean_bytes("failures.csv");
    for kind in [
        MutationKind::TornFinalLine,
        MutationKind::SwapFields,
        MutationKind::GarbageUtf8,
        MutationKind::ForeignHeader,
    ] {
        for seed in SEEDS {
            let (bytes, report) = corrupt_csv(&clean, TargetCsv::Failures, kind, seed);
            assert!(report.changed);
            let err = read_failures_with(&bytes[..], "failures.csv", IngestPolicy::Strict)
                .expect_err(&format!("{kind} seed {seed}: strict must fail"));
            assert!(
                err.to_string().contains("failures.csv"),
                "{kind} seed {seed}: error names the file: {err}"
            );
        }
    }
}

#[test]
fn corrupted_directory_loads_leniently_with_audit_flags() {
    let base = clean_dir();
    for (case, kind) in MutationKind::ALL.into_iter().enumerate() {
        let dir =
            std::env::temp_dir().join(format!("hpcfail-fi-dir-{case}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create case dir");
        for entry in std::fs::read_dir(base).expect("list clean dir") {
            let entry = entry.expect("dir entry");
            std::fs::copy(entry.path(), dir.join(entry.file_name())).expect("copy csv");
        }
        let report = corrupt_file(dir.join("failures.csv"), kind, 3).expect("corrupt file");
        assert!(report.changed, "{kind}");

        let (trace, ingest) = load_trace_with(&dir, IngestPolicy::Lenient).unwrap_or_else(|e| {
            panic!("{kind}: lenient load must survive: {e}");
        });
        assert!(trace.total_failures() > 0, "{kind}");
        let quarantined: Vec<usize> = ingest.quarantined.iter().map(|q| q.line).collect();
        assert_eq!(quarantined, report.damaged_lines, "{kind}");
        for q in &ingest.quarantined {
            assert_eq!(q.file, "failures.csv", "{kind}");
        }
        if report.expect_duplicates {
            assert!(ingest.quality.duplicate_records >= 1, "{kind}");
        }
        if report.expect_out_of_order {
            assert!(ingest.quality.out_of_order_timestamps >= 1, "{kind}");
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

#[test]
fn other_trace_files_are_covered_too() {
    // temperatures.csv: garbage bytes.
    let temps = clean_bytes("temperatures.csv");
    assert!(
        temps.len() > headers::TEMPERATURES.len() + 2,
        "demo trace carries temperature samples"
    );
    for seed in SEEDS {
        let (bytes, report) = corrupt_csv(
            &temps,
            TargetCsv::Temperatures,
            MutationKind::GarbageUtf8,
            seed,
        );
        let read = read_temperatures_with(&bytes[..], "temperatures.csv", IngestPolicy::Lenient)
            .expect("lenient survives");
        let got: Vec<usize> = read.quarantined.iter().map(|q| q.line).collect();
        assert_eq!(got, report.damaged_lines, "seed {seed}");
    }
    // jobs.csv: a deleted separator (the swap fallback for all-numeric
    // schemas).
    let jobs = clean_bytes("jobs.csv");
    for seed in SEEDS {
        let (bytes, report) = corrupt_csv(&jobs, TargetCsv::Jobs, MutationKind::SwapFields, seed);
        let read = read_jobs_with(&bytes[..], "jobs.csv", IngestPolicy::Lenient)
            .expect("lenient survives");
        let got: Vec<usize> = read.quarantined.iter().map(|q| q.line).collect();
        assert_eq!(got, report.damaged_lines, "seed {seed}");
    }
}

#[test]
fn corruption_reports_are_deterministic() {
    let clean = clean_bytes("failures.csv");
    for kind in MutationKind::ALL {
        let runs: Vec<(Vec<u8>, CorruptionReport)> = (0..2)
            .map(|_| corrupt_csv(&clean, TargetCsv::Failures, kind, 77))
            .collect();
        assert_eq!(runs[0], runs[1], "{kind}");
    }
}
