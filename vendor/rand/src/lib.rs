//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses: [`Rng::gen_range`] over primitive ranges, [`SeedableRng`], and
//! [`rngs::StdRng`].
//!
//! The container this repository builds in has no network access and no
//! crates.io mirror, so the real `rand` cannot be fetched. This crate
//! re-implements the needed API on `std` only. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given
//! seed, which is all the synthetic-fleet generator requires. Streams
//! differ from upstream `rand` (which uses ChaCha12 for `StdRng`), so
//! generated fleets differ record-for-record from a build against the
//! real crate while keeping every distributional property.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(42);
//! let mut b = StdRng::seed_from_u64(42);
//! assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
//! let x: f64 = a.gen_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&x));
//! ```

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a primitive range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[low, high)`; `high` is exclusive.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`; both ends inclusive.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                // Spans in this workspace are far below 2^64, so the
                // modulo bias is negligible next to the Monte-Carlo
                // noise of every consumer.
                let span = (high as i128 - low as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = low as f64 + unit * (high as f64 - low as f64);
                // Rounding can land exactly on `high` for wide ranges;
                // the contract is half-open.
                if v >= high as f64 { low } else { v as $t }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                (low as f64 + unit * (high as f64 - low as f64)) as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0, 1]");
        self.gen_range(0.0..1.0f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a convenient 64-bit seed.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut split = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = split.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not the upstream ChaCha12 `StdRng`; see the crate docs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3i64..9);
            assert!((-3..9).contains(&x));
            let y = rng.gen_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&y));
            let z = rng.gen_range(2u32..=5);
            assert!((2..=5).contains(&z));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn seeds_decorrelated() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        let equal = (0..1000)
            .filter(|_| a.gen_range(0u64..1000) == b.gen_range(0u64..1000))
            .count();
        assert!(equal < 50, "streams should differ, {equal} collisions");
    }
}
