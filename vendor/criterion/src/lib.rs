//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build container has no crates.io access, so the real `criterion`
//! cannot be fetched. This crate keeps the macro and builder surface
//! the benches are written against ([`criterion_group!`],
//! [`criterion_main!`], [`Criterion::bench_function`],
//! [`Bencher::iter`], [`Bencher::iter_batched`]) and reports wall-clock
//! statistics (min / mean / p50 over samples) on stdout instead of
//! criterion's HTML/statistical machinery.
//!
//! Sample counts follow [`Criterion::sample_size`]; per-sample
//! iteration counts are auto-calibrated towards ~25 ms per sample so
//! fast kernels still accumulate enough iterations to measure.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost; only a tag here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            results: Vec::new(),
        }
    }

    /// Times `routine`, auto-calibrating iterations per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: one untimed-ish probe decides how many iterations
        // fit in the per-sample budget.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));
        let budget = Duration::from_millis(25);
        let iters = (budget.as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.results.push(start.elapsed() / iters as u32);
        }
    }

    /// Times `routine` over fresh inputs built by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let probe_start = Instant::now();
        black_box(routine(input));
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));
        let budget = Duration::from_millis(25);
        let iters = (budget.as_nanos() / probe.as_nanos()).clamp(1, 100_000) as u64;
        for _ in 0..self.samples {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.results.push(start.elapsed() / iters as u32);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// The benchmark manager: registers and runs benchmark functions.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
    list_only: bool,
    quiet_exit: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` / `cargo test --benches` pass harness flags;
        // honour the ones that matter and ignore the rest.
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut filter = None;
        let mut list_only = false;
        let mut quiet_exit = false;
        for arg in &args {
            match arg.as_str() {
                "--bench" | "--profile-time" | "--quiet" | "-q" | "--exact" | "--nocapture" => {}
                "--list" => list_only = true,
                // Under `cargo test --benches` the harness asks for a
                // smoke run, not a measurement run.
                "--test" => quiet_exit = true,
                other if !other.starts_with('-') && filter.is_none() => {
                    filter = Some(other.to_owned());
                }
                _ => {}
            }
        }
        Criterion {
            sample_size: 20,
            filter,
            list_only,
            quiet_exit,
        }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.list_only {
            println!("{id}: bench");
            return self;
        }
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let samples = if self.quiet_exit { 2 } else { self.sample_size };
        let mut b = Bencher::new(samples);
        f(&mut b);
        let mut sorted = b.results.clone();
        sorted.sort_unstable();
        if sorted.is_empty() {
            println!("{id:<40} (no samples recorded)");
            return self;
        }
        let min = sorted[0];
        let p50 = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{id:<40} min {:>12}  mean {:>12}  p50 {:>12}  ({} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(p50),
            sorted.len(),
        );
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        if !self.list_only {
            println!("group {name}");
        }
        BenchmarkGroup { criterion: self }
    }

    /// Mean duration of each sample of `f` — exposed so non-criterion
    /// code (e.g. overhead assertions in tests) can reuse the
    /// calibrated measurement loop.
    pub fn measure_once<O, R: FnMut() -> O>(samples: usize, routine: R) -> Duration {
        let mut b = Bencher::new(samples.max(2));
        b.iter(routine);
        let mut sorted = b.results;
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    }
}

/// A set of related benchmarks sharing a display prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.criterion.bench_function(&format!("  {id}"), f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher::new(3);
        b.iter(|| 2u64 + 2);
        assert_eq!(b.results.len(), 3);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new(2);
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.results.len(), 2);
    }

    #[test]
    fn measure_once_returns_positive() {
        let d = Criterion::measure_once(3, || std::hint::black_box(1 + 1));
        assert!(d > Duration::ZERO);
    }
}
