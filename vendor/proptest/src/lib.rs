//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build container has no crates.io access, so the real `proptest`
//! cannot be fetched. This crate keeps the same surface the property
//! tests are written against — the [`proptest!`] macro, the
//! [`Strategy`](strategy::Strategy) trait, range/tuple/string-pattern
//! strategies, `prop::collection::vec`, `prop::sample::select`,
//! `prop::option::of`, and the `prop_assert*` macros — backed by plain
//! seeded random sampling instead of shrinking value trees.
//!
//! Differences from upstream, deliberately accepted:
//!
//! - no shrinking: a failing case reports its deterministic case seed
//!   instead of a minimized input;
//! - `prop_assume!` skips the case rather than resampling it;
//! - regression files (`*.proptest-regressions`) are ignored.
//!
//! Case generation is deterministic per (test name, case index), so
//! failures reproduce run-to-run.

#![forbid(unsafe_code)]
// The `proptest!` doc example necessarily shows a `#[test]` function —
// that is the macro's only supported input shape.
#![allow(clippy::test_attr_in_doctest)]

pub mod strategy {
    //! The [`Strategy`] trait and combinator types.

    use rand::rngs::StdRng;
    use rand::{Rng, SampleUniform};
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    ///
    /// Upstream proptest separates strategies from value trees to
    /// support shrinking; this stand-in generates values directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<T: SampleUniform> Strategy for Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: SampleUniform> Strategy for RangeInclusive<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// String literals are patterns: a restricted regex subset
    /// supporting literal characters, `[...]` character classes (with
    /// `a-z` ranges), and `{m,n}` / `{n}` repetition of the previous
    /// atom. This covers the patterns used in the workspace's tests,
    /// e.g. `"[a-zA-Z0-9 .%-]{0,12}"`.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    enum Atom {
        Literal(char),
        Class(Vec<char>),
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let mut set = Vec::new();
        let mut prev: Option<char> = None;
        while let Some(c) = chars.next() {
            match c {
                ']' => return set,
                '-' => {
                    // A range if squeezed between two literals,
                    // otherwise a literal '-'.
                    match (prev, chars.peek()) {
                        (Some(lo), Some(&hi)) if hi != ']' => {
                            chars.next();
                            for code in (lo as u32 + 1)..=(hi as u32) {
                                if let Some(ch) = char::from_u32(code) {
                                    set.push(ch);
                                }
                            }
                            prev = None;
                        }
                        _ => {
                            set.push('-');
                            prev = Some('-');
                        }
                    }
                }
                '\\' => {
                    let esc = chars.next().unwrap_or('\\');
                    set.push(esc);
                    prev = Some(esc);
                }
                other => {
                    set.push(other);
                    prev = Some(other);
                }
            }
        }
        set
    }

    fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
        let mut body = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                break;
            }
            body.push(c);
        }
        match body.split_once(',') {
            Some((lo, hi)) => (
                lo.trim().parse().unwrap_or(0),
                hi.trim().parse().unwrap_or(0),
            ),
            None => {
                let n = body.trim().parse().unwrap_or(1);
                (n, n)
            }
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        let mut last: Option<Atom> = None;
        let emit = |atom: &Atom, out: &mut String, rng: &mut StdRng| match atom {
            Atom::Literal(c) => out.push(*c),
            Atom::Class(set) => {
                if !set.is_empty() {
                    out.push(set[rng.gen_range(0..set.len())]);
                }
            }
        };
        while let Some(c) = chars.next() {
            match c {
                '[' => {
                    let atom = Atom::Class(parse_class(&mut chars));
                    emit(&atom, &mut out, rng);
                    last = Some(atom);
                }
                '{' => {
                    let (lo, hi) = parse_repeat(&mut chars);
                    if let Some(atom) = &last {
                        // The atom was already emitted once when seen;
                        // drop that and emit `count` fresh draws.
                        out.pop();
                        let count = rng.gen_range(lo..=hi.max(lo));
                        for _ in 0..count {
                            emit(atom, &mut out, rng);
                        }
                    }
                    last = None;
                }
                '\\' => {
                    let esc = chars.next().unwrap_or('\\');
                    let atom = Atom::Literal(esc);
                    emit(&atom, &mut out, rng);
                    last = Some(atom);
                }
                other => {
                    let atom = Atom::Literal(other);
                    emit(&atom, &mut out, rng);
                    last = Some(atom);
                }
            }
        }
        out
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Length specification for [`crate::prop::collection::vec`]: an
    /// exact `usize` or a half-open `Range<usize>`.
    pub struct LenRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for LenRange {
        fn from(n: usize) -> Self {
            LenRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for LenRange {
        fn from(r: Range<usize>) -> Self {
            LenRange {
                lo: r.start,
                hi_exclusive: r.end.max(r.start + 1),
            }
        }
    }

    /// See [`crate::prop::collection::vec`].
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: LenRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.len.lo..self.len.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`crate::prop::sample::select`].
    pub struct Select<T> {
        pub(crate) items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            assert!(!self.items.is_empty(), "select() needs at least one item");
            self.items[rng.gen_range(0..self.items.len())].clone()
        }
    }

    /// See [`crate::prop::option::of`].
    pub struct OptionStrategy<S> {
        pub(crate) inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod prop {
    //! The `prop::` namespace mirrored from upstream.

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::{LenRange, Strategy, VecStrategy};

        /// A `Vec` whose length is drawn from `len` (a `Range<usize>`
        /// or an exact `usize`) and whose elements come from `element`.
        pub fn vec<S: Strategy>(element: S, len: impl Into<LenRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                len: len.into(),
            }
        }
    }

    pub mod sample {
        //! Sampling from fixed sets.

        use crate::strategy::Select;

        /// Picks uniformly from `items`.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            Select { items }
        }
    }

    pub mod option {
        //! Optional values.

        use crate::strategy::{OptionStrategy, Strategy};

        /// `Some(value)` roughly three times out of four, else `None`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }
    }
}

pub mod test_runner {
    //! Configuration and the per-case error type.

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// `prop_assert*!` failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "{m}"),
            }
        }
    }

    /// One case's outcome.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many cases to generate per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the workspace's
            // generation-heavy properties fast while still sweeping the
            // input space every run (cases are seeded per run count,
            // not fixed).
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-(test, case) seed.
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

pub mod prelude {
    //! Everything the tests import with `use proptest::prelude::*`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[doc(hidden)]
pub mod __rt {
    //! Macro support; not part of the public surface.
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Declares property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0i64..1000, b in 0i64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # fn main() {} // the #[test] fn is stripped outside `--test` builds
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident ( $( $pat:pat in $strat:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let seed = $crate::test_runner::case_seed(stringify!($name), case);
                    let mut __proptest_rng =
                        <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(seed);
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )*
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                            "proptest case {case} of {} failed (seed {seed:#x}): {msg}",
                            stringify!($name),
                        ),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

/// Like `assert!` but fails only the current case, with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // Not routed through `format!`: `stringify!` output may contain
        // braces (closures, struct literals) that `format!` would try
        // to interpret.
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Like `assert_eq!` but fails only the current case, with context.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// Skips the current case when its inputs are unusable.
///
/// Upstream resamples until the assumption holds; this stand-in simply
/// skips, trading a few effective cases for simplicity.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pattern_strategy_respects_class_and_len() {
        let mut rng = StdRng::seed_from_u64(9);
        let strat = "[a-cX]{2,5}";
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!((2..=5).contains(&s.chars().count()), "len of {s:?}");
            assert!(s.chars().all(|c| "abcX".contains(c)), "chars of {s:?}");
        }
    }

    #[test]
    fn vec_strategy_bounds_len() {
        let mut rng = StdRng::seed_from_u64(4);
        let strat = crate::prop::collection::vec(0i64..10, 3..7);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|x| (0..10).contains(x)));
        }
    }

    #[test]
    fn select_draws_members() {
        let mut rng = StdRng::seed_from_u64(2);
        let strat = crate::prop::sample::select(vec!['p', 'q']);
        for _ in 0..50 {
            assert!(matches!(strat.generate(&mut rng), 'p' | 'q'));
        }
    }

    #[test]
    fn option_of_produces_both_variants() {
        let mut rng = StdRng::seed_from_u64(11);
        let strat = crate::prop::option::of(0u32..5);
        let draws: Vec<Option<u32>> = (0..200).map(|_| strat.generate(&mut rng)).collect();
        assert!(draws.iter().any(Option::is_some));
        assert!(draws.iter().any(Option::is_none));
    }

    proptest! {
        #[test]
        fn macro_end_to_end((a, b) in (0i64..100, 0i64..100), v in prop::collection::vec(0u8..3, 0..4)) {
            prop_assert!(a + b >= a, "sum shrank");
            prop_assert_eq!(v.len() <= 3, true);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn configured_case_count(x in 0u32..10) {
            prop_assume!(x > 0);
            prop_assert!(x < 10);
        }
    }
}
